"""Metrics: counters, gauges, fixed-bucket histograms, and their registry.

Series are identified by a metric name plus a frozen label set, Prometheus
style: ``registry.counter("frames_dropped", detector="vehicle")`` and
``... detector="pedestrian"`` are two series of one metric.  Histograms use
*fixed* bucket boundaries chosen at creation so merging and exporting never
re-bins.  ``snapshot()`` returns plain dicts — the exporters and the CLI
``telemetry`` summary consume exactly that shape.

The module also owns the shared timing helpers (:func:`throughput_mbs`,
:class:`Stopwatch`) that the reconfiguration experiments and the benchmark
harness previously each computed by hand.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError

#: Default histogram buckets (seconds) spanning DMA setup (~1 µs) to drives.
DEFAULT_TIME_BUCKETS_S = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.02, 0.05, 0.1, 0.5, 1.0, 10.0
)

#: Default buckets for millisecond-valued histograms (reconfig, stages).
DEFAULT_MS_BUCKETS = (0.01, 0.1, 1.0, 5.0, 10.0, 20.0, 25.0, 50.0, 100.0, 1000.0)

#: Buckets for small-count histograms (detections per frame).
DETECTIONS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def throughput_mbs(n_bytes: float, elapsed_s: float) -> float:
    """Decimal MB/s, the unit the paper reports (0.0 for empty intervals).

    The single definition of bytes/elapsed-time throughput: the PR
    controller reports, the Section IV-A experiment, and the benchmark
    harness all call this rather than re-deriving the formula.
    """
    if elapsed_s <= 0:
        return 0.0
    return n_bytes / elapsed_s / 1e6


class Stopwatch:
    """Wall-clock context manager: ``with Stopwatch() as sw: ...; sw.elapsed_s``."""

    def __init__(self, wall_clock=None):
        self._clock = wall_clock or time.perf_counter
        self.start_s = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start_s = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_s = self._clock() - self.start_s

    def throughput_mbs(self, n_bytes: float) -> float:
        return throughput_mbs(n_bytes, self.elapsed_s)


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (frames, faults, bytes)."""

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name}: cannot decrease (by {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another series of the same counter in: counts add."""
        _check_mergeable(self, other)
        self.value += other.value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "labels": self.labels, "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, active configuration, MB/s)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        """Fold another series of the same gauge in: last writer wins.

        A gauge is a point-in-time value, so there is no meaningful sum;
        the merged series reports the incoming value.  Last-writer-wins is
        associative, which the fold-order tests rely on.
        """
        _check_mergeable(self, other)
        self.value = other.value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "labels": self.labels, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``bounds`` are the *upper* edges of the finite buckets; one implicit
    overflow bucket catches everything above the last edge.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Mapping[str, str], bounds: Iterable[float]):
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ConfigurationError(f"histogram {name}: needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ConfigurationError(f"histogram {name}: bounds must increase, got {self.bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the same series in, bucket by bucket.

        Both series must share bucket bounds (they always do when built
        from the same instrumentation site — bounds are fixed at creation
        precisely so merging never re-bins).  Counts and sums add; min/max
        fold; no observation is ever double-counted because the fold is a
        plain element-wise sum.
        """
        _check_mergeable(self, other)
        if self.bounds != other.bounds:
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge differing bounds "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-th percentile (0..100) from the fixed buckets.

        Linear interpolation within the bucket holding the target rank,
        using the observed min/max to bound the open-ended first and
        overflow buckets.  ``None`` for an empty histogram.  The estimate
        is clamped to ``[min, max]``, so degenerate single-bucket series
        still report sane values.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if cumulative + bucket_count < target or bucket_count == 0:
                cumulative += bucket_count
                continue
            # Bucket i spans (lo, hi]; bound open edges by observations.
            lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            frac = (target - cumulative) / bucket_count
            estimate = lo + (hi - lo) * frac
            return min(self.max, max(self.min, estimate))
        return self.max

    def percentiles(self, qs: Iterable[float] = (50.0, 90.0, 99.0)) -> dict[str, float]:
        """``{"p50": ..., ...}`` estimates (empty dict for no samples)."""
        out: dict[str, float] = {}
        for q in qs:
            value = self.percentile(q)
            if value is not None:
                out[f"p{q:g}"] = value
        return out

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "percentiles": self.percentiles(),
        }


class MetricsRegistry:
    """Get-or-create home of every labelled series.

    A series is keyed by (name, labels); asking again with the same key
    returns the same object, so instrumentation sites never need to hold
    references across calls.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, tuple], Any] = {}

    def _get(self, kind: str, name: str, labels: Mapping[str, Any], factory):
        key = (kind, name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = factory()
            self._series[key] = series
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, lambda: Counter(name, _as_str(labels)))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, lambda: Gauge(name, _as_str(labels)))

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_MS_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(
            "histogram", name, labels, lambda: Histogram(name, _as_str(labels), bounds)
        )

    def __len__(self) -> int:
        return len(self._series)

    def series(self) -> list[Any]:
        """All series in creation order."""
        return list(self._series.values())

    def snapshot(self) -> list[dict]:
        """Plain-data dump of every series (the exporters' input)."""
        return [series.to_dict() for series in self._series.values()]

    def value(self, name: str, **labels: Any) -> float | None:
        """Convenience read of one counter/gauge value (None if absent)."""
        key_labels = _label_key(labels)
        for (kind, series_name, lk), series in self._series.items():
            if series_name == name and lk == key_labels and kind in ("counter", "gauge"):
                return series.value
        return None

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one, series by series.

        Per-worker registries fold into a fleet-level registry without
        double-counting: counters add, histograms add bucket-wise, gauges
        take the incoming value.  Series missing on either side are simply
        carried over.  The fold is associative (the merge unit tests pin
        this), so workers can be merged in any grouping.  Returns ``self``
        for chaining.
        """
        for key, series in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                kind, name, _ = key
                if kind == "histogram":
                    mine = Histogram(name, series.labels, series.bounds)
                elif kind == "counter":
                    mine = Counter(name, series.labels)
                else:
                    mine = Gauge(name, series.labels)
                self._series[key] = mine
            mine.merge(series)
        return self


def _as_str(labels: Mapping[str, Any]) -> dict[str, str]:
    return {str(k): str(v) for k, v in labels.items()}


def _check_mergeable(mine: Any, other: Any) -> None:
    if mine.kind != other.kind or mine.name != other.name:
        raise ConfigurationError(
            f"cannot merge {other.kind} {other.name!r} into {mine.kind} {mine.name!r}"
        )


def _snapshot_key(series: Mapping) -> tuple:
    return (series["kind"], series["name"], _label_key(series.get("labels", {})))


def _series_from_dict(series: Mapping) -> Any:
    """Rebuild a live series object from one snapshot dict."""
    kind, name, labels = series["kind"], series["name"], dict(series.get("labels", {}))
    if kind == "counter":
        out: Any = Counter(name, labels)
        out.value = float(series.get("value", 0.0))
    elif kind == "gauge":
        out = Gauge(name, labels)
        out.value = float(series.get("value", 0.0))
    elif kind == "histogram":
        out = Histogram(name, labels, series["bounds"])
        counts = list(series.get("bucket_counts", []))
        if len(counts) != len(out.bucket_counts):
            raise ConfigurationError(
                f"histogram {name}: snapshot has {len(counts)} bucket counts, "
                f"bounds imply {len(out.bucket_counts)}"
            )
        out.bucket_counts = [int(n) for n in counts]
        out.count = int(series.get("count", 0))
        out.sum = float(series.get("sum", 0.0))
        out.min = series.get("min")
        out.max = series.get("max")
    else:
        raise ConfigurationError(f"unknown metric kind {kind!r} in snapshot")
    return out


def merge_snapshots(*snapshots: Iterable[Mapping]) -> list[dict]:
    """Fold exported metric snapshots (plain dicts) into one snapshot.

    This is the cross-process twin of :meth:`MetricsRegistry.merge`: fleet
    workers ship :meth:`MetricsRegistry.snapshot` output (or a reloaded
    JSONL dump's ``metrics`` list) across process boundaries as plain
    data, and the aggregator folds them here without ever rebuilding the
    original sessions.  Same semantics — counters add, histograms add
    bucket-wise (bounds must agree), gauges last-writer-win — and the
    same associativity guarantee.  Series order follows first appearance.
    """
    merged: dict[tuple, Any] = {}
    for snapshot in snapshots:
        for series in snapshot:
            key = _snapshot_key(series)
            incoming = _series_from_dict(series)
            mine = merged.get(key)
            if mine is None:
                merged[key] = incoming
            else:
                mine.merge(incoming)
    return [series.to_dict() for series in merged.values()]


def snapshot_values(snapshot: Iterable[Mapping]) -> dict[str, dict[tuple, float]]:
    """Index an exported snapshot: name -> {sorted-label-tuple -> value}.

    Works on the plain dicts from :meth:`MetricsRegistry.snapshot` (or a
    reloaded JSONL dump); histograms report their mean.
    """
    table: dict[str, dict[tuple, float]] = {}
    for series in snapshot:
        labels = _label_key(series.get("labels", {}))
        if series["kind"] == "histogram":
            count = series.get("count", 0)
            value = series.get("sum", 0.0) / count if count else 0.0
        else:
            value = series.get("value", 0.0)
        table.setdefault(series["name"], {})[labels] = value
    return table
