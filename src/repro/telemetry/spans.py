"""Structured tracing: spans, span events, and the tracer.

The model is a small subset of OpenTelemetry, adapted to a discrete-event
simulation: every span carries *two* clocks — the simulator clock (what the
paper's measurements are about) and the host wall clock (what profiling the
reproduction itself is about).  Spans form a tree through ``parent_id``;
point-in-time occurrences (faults, interrupts, degradations) attach to
their enclosing span as :class:`SpanEvent` s.

The default tracer is :class:`NullTracer` — a shared, allocation-free no-op
so instrumented hot paths cost one attribute check and nothing else when
telemetry is off.  :class:`Tracer` records.  Both expose the same surface:

* ``span(name, **attrs)`` — context manager for lexically scoped work;
* ``begin(name, **attrs)`` / ``end(span)`` — for event-driven code whose
  spans open and close in different callbacks (DMA transfers, partial
  reconfigurations);
* ``event(name, **attrs)`` — a free-standing instant event, attached to
  the innermost open lexical span when there is one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError


@dataclass
class SpanEvent:
    """A point-in-time occurrence inside (or outside) a span."""

    time_s: float
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"time_s": self.time_s, "name": self.name, "attrs": dict(self.attrs)}


@dataclass
class Span:
    """One timed operation on the simulator and wall clocks.

    Attributes:
        name: Operation name ("drive.frame", "pr.reconfigure", ...).
        span_id: Unique id within one tracer.
        parent_id: Enclosing span's id, or ``None`` for a root span.
        start_s / end_s: Simulator-clock bounds (seconds).
        wall_start_s / wall_end_s: Host-clock bounds (``perf_counter``).
        attrs: Typed attributes (labels, byte counts, outcomes, ...).
        events: Instant events tagged onto this span.
    """

    name: str
    span_id: int
    parent_id: int | None = None
    start_s: float = 0.0
    end_s: float | None = None
    wall_start_s: float = 0.0
    wall_end_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Simulator-clock duration (0.0 while the span is open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def wall_duration_s(self) -> float:
        """Wall-clock duration (0.0 while the span is open)."""
        if self.wall_end_s is None:
            return 0.0
        return self.wall_end_s - self.wall_start_s

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, time_s: float, **attrs: Any) -> SpanEvent:
        event = SpanEvent(time_s=time_s, name=name, attrs=attrs)
        self.events.append(event)
        return event

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "wall_start_s": self.wall_start_s,
            "wall_end_s": self.wall_end_s,
            "attrs": dict(self.attrs),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_s=data.get("start_s", 0.0),
            end_s=data.get("end_s"),
            wall_start_s=data.get("wall_start_s", 0.0),
            wall_end_s=data.get("wall_end_s"),
            attrs=dict(data.get("attrs", {})),
        )
        for event in data.get("events", ()):
            span.events.append(
                SpanEvent(
                    time_s=event["time_s"], name=event["name"], attrs=dict(event.get("attrs", {}))
                )
            )
        return span


class _NullSpan:
    """The shared do-nothing span; also its own context manager."""

    __slots__ = ()

    name = ""
    span_id = -1
    parent_id = None
    finished = True
    duration_s = 0.0
    wall_duration_s = 0.0
    attrs: dict[str, Any] = {}
    events: list[SpanEvent] = []

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, time_s: float, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: Module-level singleton handed out by the no-op tracer.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every call returns immediately.

    ``enabled`` is False so hot paths can skip even attribute preparation
    with a single check; calling through anyway is safe and allocation-free.
    """

    enabled = False
    spans: tuple[Span, ...] = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def begin(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def end(self, span: Any, **attrs: Any) -> None:
        pass

    def event(self, name: str, time_s: float | None = None, **attrs: Any) -> None:
        pass


class _SpanContext:
    """Context manager pushing/popping one span on the lexical stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        if exc_type is not None:
            self._span.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer.end(self._span)


class Tracer:
    """A recording tracer over a simulator clock.

    Args:
        clock: Returns the current simulator time in seconds (e.g.
            ``lambda: soc.sim.now``).  Defaults to a constant 0.0 clock so
            pure-software pipelines can still be profiled on wall time.
        wall_clock: Host clock; ``time.perf_counter`` unless overridden
            (tests inject deterministic clocks).
        max_spans: Optional ring-buffer bound on *finished* spans; the
            oldest finished spans are discarded once exceeded (open spans
            are never dropped).  ``spans_dropped`` counts the casualties.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        wall_clock: Callable[[], float] | None = None,
        max_spans: int | None = None,
    ):
        if max_spans is not None and max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock or (lambda: 0.0)
        self.wall_clock = wall_clock or time.perf_counter
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.spans_dropped = 0
        self._stack: list[Span] = []
        self._next_id = 0

    # Span lifecycle ---------------------------------------------------------

    def _new_span(self, name: str, parent_id: int | None, attrs: dict[str, Any]) -> Span:
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent_id,
            start_s=self.clock(),
            wall_start_s=self.wall_clock(),
            attrs=attrs,
        )
        self._next_id += 1
        return span

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Lexically scoped span; parent = the innermost open ``span()``."""
        parent = self._stack[-1].span_id if self._stack else None
        return _SpanContext(self, self._new_span(name, parent, attrs))

    def begin(self, name: str, parent: Span | None = None, **attrs: Any) -> Span:
        """Open a span that will be closed later with :meth:`end`.

        For callback-driven work: the span is *not* pushed on the lexical
        stack (its closing callback runs in a different scope).  Its parent
        is ``parent`` if given, else the innermost open lexical span.
        """
        if parent is not None:
            parent_id = parent.span_id
        else:
            parent_id = self._stack[-1].span_id if self._stack else None
        return self._new_span(name, parent_id, attrs)

    def end(self, span: Span, **attrs: Any) -> None:
        """Close a span (idempotent) and record it."""
        if isinstance(span, _NullSpan) or span.finished:
            return
        span.attrs.update(attrs)
        span.end_s = self.clock()
        span.wall_end_s = self.wall_clock()
        self.spans.append(span)
        if self.max_spans is not None and len(self.spans) > self.max_spans:
            drop = len(self.spans) - self.max_spans
            del self.spans[:drop]
            self.spans_dropped += drop

    def event(self, name: str, time_s: float | None = None, **attrs: Any) -> SpanEvent:
        """Instant event, tagged onto the innermost open lexical span.

        With no open span the event becomes a zero-length span of its own,
        so nothing observed is ever silently lost.
        """
        at = self.clock() if time_s is None else time_s
        if self._stack:
            return self._stack[-1].add_event(name, at, **attrs)
        span = self._new_span(name, None, dict(attrs))
        span.start_s = at
        span.end_s = at
        span.wall_end_s = span.wall_start_s
        self.spans.append(span)
        return SpanEvent(time_s=at, name=name, attrs=attrs)

    @property
    def current_span(self) -> Span | None:
        """The innermost open lexical span, if any."""
        return self._stack[-1] if self._stack else None

    def finished_spans(self, name: str | None = None) -> list[Span]:
        """Recorded spans, optionally filtered by name."""
        if name is None:
            return list(self.spans)
        return [s for s in self.spans if s.name == name]
