"""Block-level hardware designs of the paper's three modules.

Composes the :mod:`repro.hw.resources` estimators into the three designs of
Table II:

* ``day_dusk_design``  — the HOG+SVM vehicle pipeline (Fig. 2),
* ``dark_design``      — the threshold/closing/DBN/pairing pipeline (Fig. 4),
* ``static_design``    — pedestrian detection + data capture + PR controller
  + DMA/interconnect infrastructure (Fig. 6, static partition).

and their streaming timing models (Fig. 2 / Fig. 4 pipelines at 125 MHz).

Architectural parameters (window sizes, parallelism, datapath widths) are
stated explicitly; where the paper does not publish a block's internals the
parameters are chosen so the totals land near the published utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.resources import (
    ResourceVector,
    adder_tree,
    axi_dma_core,
    axi_interconnect,
    axi_lite_slave,
    bram_for_bits,
    comparator_bank,
    ddr_controller_pl,
    divider,
    fifo,
    icap_controller,
    line_buffer,
    mac_array,
    sqrt_unit,
    video_io,
)
from repro.hw.timing import (
    HDTV_TIMING,
    PAPER_CLOCK_HZ,
    PipelineStage,
    StreamingPipeline,
    VideoTiming,
)


@dataclass(frozen=True)
class DesignReport:
    """A named design with per-block resource accounting."""

    name: str
    blocks: tuple[tuple[str, ResourceVector], ...]

    @property
    def total(self) -> ResourceVector:
        total = ResourceVector()
        for _, rv in self.blocks:
            total = total + rv
        return total

    def render(self) -> str:
        """Block-level breakdown as an aligned text table."""
        name_w = max(len(n) for n, _ in self.blocks + (("TOTAL", ResourceVector()),))
        lines = [f"{self.name} design — block-level resources"]
        header = f"{'block':<{name_w}} {'LUT':>8} {'FF':>8} {'BRAM':>6} {'DSP48':>6}"
        lines.append(header)
        lines.append("-" * len(header))
        for block_name, rv in self.blocks:
            lines.append(
                f"{block_name:<{name_w}} {rv.lut:>8} {rv.ff:>8} {rv.bram:>6} {rv.dsp:>6}"
            )
        total = self.total
        lines.append("-" * len(header))
        lines.append(
            f"{'TOTAL':<{name_w}} {total.lut:>8} {total.ff:>8} {total.bram:>6} {total.dsp:>6}"
        )
        return "\n".join(lines)


# --- Day / dusk vehicle detection (Fig. 2) ---------------------------------


def hog_svm_design(
    name: str = "day-dusk-vehicle",
    frame_width: int = 1920,
    window_cells: int = 8,
    n_bins: int = 9,
    parallel_normalizers: int = 12,
    n_models: int = 2,
    feature_length: int = 1764,
    buffered_cell_rows: int = 16,
) -> DesignReport:
    """Resources of a streaming HOG+SVM engine.

    ``parallel_normalizers`` is the count of concurrently normalised block
    lanes — the knob that buys II=1 at 1080p; ``n_models`` counts the block
    RAM-resident SVM models (day and dusk share the fabric, "stored in two
    block RAM").
    """
    cells_per_row = frame_width // 8
    blocks: list[tuple[str, ResourceVector]] = []
    # Gradient: 3-row luma buffer + |g| / angle datapath (CORDIC, LUT-only).
    blocks.append(("gradient line buffers", line_buffer(3, frame_width, 8)))
    blocks.append(("gradient magnitude/angle", ResourceVector(lut=5_800, ff=5_600)))
    # Histogram: dual-bin interpolation + per-cell accumulators.
    blocks.append(("histogram interpolation", ResourceVector(lut=3_600, ff=3_200)))
    blocks.append(("cell accumulators", adder_tree(n_bins * 8, 16)))
    # HOG memory: ping-pong cell rows covering the window plus the stride
    # overlap of the next window row (double-buffered block assembly).
    hog_bits = 2 * buffered_cell_rows * cells_per_row * n_bins * 16
    blocks.append(("HOG memory", ResourceVector(bram=bram_for_bits(hog_bits), lut=400, ff=600)))
    # Normalizer: parallel block lanes, each squaring 36 values, sqrt, div.
    lane = (
        mac_array(6, use_dsp=False, bits=16)
        + sqrt_unit(16)
        + divider(16)
        + ResourceVector(lut=900, ff=1_300)
    )
    norm = ResourceVector()
    for _ in range(parallel_normalizers):
        norm = norm + lane
    blocks.append((f"block normalizer x{parallel_normalizers}", norm))
    # Normalized HOG memory: same footprint as the HOG memory.
    blocks.append(
        ("normalized HOG memory", ResourceVector(bram=bram_for_bits(hog_bits), lut=400, ff=600))
    )
    # SVM: sequential dot product against the model BRAMs.
    model_bits = n_models * feature_length * 16
    blocks.append(("SVM MAC + accumulator", mac_array(8, use_dsp=True)))
    blocks.append(
        ("SVM model BRAM", ResourceVector(bram=max(2, bram_for_bits(model_bits)), lut=300, ff=400))
    )
    # Window assembly, thresholding, NMS, result formatting.
    blocks.append(("window control / NMS", ResourceVector(lut=6_800, ff=6_400, bram=8)))
    # Stream plumbing.
    blocks.append(("AXI-Stream FIFOs", fifo(128 * 1024) + fifo(128 * 1024)))
    blocks.append(("AXI-Lite control", axi_lite_slave()))
    return DesignReport(name=name, blocks=tuple(blocks))


def day_dusk_design() -> DesignReport:
    """The Table-II "Day and Dusk Design" row."""
    return hog_svm_design()


def day_dusk_pipeline(timing: VideoTiming = HDTV_TIMING, clock_hz: float = PAPER_CLOCK_HZ) -> StreamingPipeline:
    """Fig. 2 timing: HOG descriptor -> normalizer -> SVM, II = 1."""
    pipe = StreamingPipeline(name="day-dusk-vehicle", timing=timing, clock_hz=clock_hz)
    rows = timing.width  # one raster row of latency per line-buffered stage
    pipe.add_stage(PipelineStage("HOG descriptor", 1.0, latency_cycles=3 * rows))
    pipe.add_stage(PipelineStage("HOG normalizer", 1.0, latency_cycles=8 * rows))
    # SVM evaluates one window feature element per cycle, overlapped across
    # windows; demand stays below the raster rate.
    windows = max(1, (timing.height // 8 - 7) * (timing.width // 8 - 7) // 4)
    pipe.add_stage(
        PipelineStage("SVM classifier", 1.0, latency_cycles=2_000, work_items_per_frame=windows * 270)
    )
    return pipe


# --- Dark vehicle detection (Fig. 4) ----------------------------------------


def dark_design(
    name: str = "dark-vehicle",
    frame_width: int = 1920,
    frame_height: int = 1080,
    downsample: int = 3,
    dbn_layers: tuple[int, ...] = (81, 20, 8),
    n_classes: int = 4,
    dbn_engines: int = 3,
) -> DesignReport:
    """Resources of the dark pipeline.

    The dominant consumers: the ping-pong full-resolution binary mask store
    (BRAM) and the replicated DBN engines (DSP for the hidden/output layers,
    fabric adder trees for the binary first layer).
    """
    small_w = frame_width // downsample
    blocks: list[tuple[str, ResourceVector]] = []
    blocks.append(("channel split (YCbCr)", mac_array(6, use_dsp=True) + ResourceVector(lut=800, ff=1_000)))
    blocks.append(("dual threshold + merge", comparator_bank(3, 10) + ResourceVector(lut=600, ff=700)))
    # Full-res binary mask, ping-pong (the Fig. 4 ". . ." frame store).
    mask_bits = 2 * frame_width * frame_height
    blocks.append(("binary mask store (ping-pong)", ResourceVector(bram=bram_for_bits(mask_bits), lut=900, ff=1_100)))
    blocks.append(("downsampler", ResourceVector(lut=700, ff=900)))
    blocks.append(("closing (dilate+erode)", line_buffer(6, small_w, 1) + ResourceVector(lut=2_400, ff=2_600)))
    # Sliding-window DBN engines.
    layer1_in, layer1_out = dbn_layers[0], dbn_layers[1]
    engine = ResourceVector()
    # Layer 1: binary visibles -> adder trees (no multipliers needed).
    for _ in range(layer1_out):
        engine = engine + adder_tree(layer1_in, 16)
    # Hidden/output layers: fixed-point MACs on DSP48s.
    macs = 0
    for a, b in zip(dbn_layers[1:], dbn_layers[2:]):
        macs += a * b
    macs += dbn_layers[-1] * n_classes
    engine = engine + mac_array(macs, use_dsp=True)
    # Sigmoid tables and weight ROMs.
    weight_bits = sum(a * b for a, b in zip(dbn_layers, dbn_layers[1:])) * 18
    engine = engine + ResourceVector(bram=max(2, bram_for_bits(weight_bits)) + 3, lut=2_300, ff=5_200)
    total_engines = ResourceVector()
    for _ in range(dbn_engines):
        total_engines = total_engines + engine
    blocks.append((f"DBN engine x{dbn_engines}", total_engines))
    blocks.append(("window line buffers", line_buffer(9, small_w, 1)))
    blocks.append(("class grid store", ResourceVector(bram=4, lut=500, ff=600)))
    # Spatial correlation: candidate table + pair SVM.
    blocks.append(("candidate extraction", ResourceVector(lut=3_800, ff=4_200, bram=3)))
    blocks.append(("pair SVM (matching)", mac_array(6, use_dsp=True) + ResourceVector(lut=1_200, ff=1_500)))
    blocks.append(("merge & compare", ResourceVector(lut=2_200, ff=2_600, bram=2)))
    blocks.append(("AXI-Stream FIFOs", fifo(64 * 1024) + fifo(64 * 1024)))
    blocks.append(("AXI-Lite control", axi_lite_slave()))
    return DesignReport(name=name, blocks=tuple(blocks))


def dark_pipeline(timing: VideoTiming = HDTV_TIMING, clock_hz: float = PAPER_CLOCK_HZ, dbn_engines: int = 3) -> StreamingPipeline:
    """Fig. 4 timing: threshold -> resize -> closing -> DBN -> matching."""
    pipe = StreamingPipeline(name="dark-vehicle", timing=timing, clock_hz=clock_hz)
    width = timing.width
    pipe.add_stage(PipelineStage("split + threshold + AND", 1.0, latency_cycles=8))
    pipe.add_stage(PipelineStage("resize 3x", 1.0, latency_cycles=3 * width))
    small_w = width // 3
    small_h = timing.height // 3
    pipe.add_stage(PipelineStage("closing", 1.0, latency_cycles=6 * small_w))
    # DBN: one window per cycle per engine over the decimated grid.
    windows = ((small_h - 9) // 2 + 1) * ((small_w - 9) // 2 + 1)
    dbn_cycles = windows * 24  # 24 cycles per window per engine (folded MACs)
    pipe.add_stage(
        PipelineStage(
            "sliding DBN",
            1.0,
            latency_cycles=600,
            work_items_per_frame=max(1, dbn_cycles // dbn_engines),
        )
    )
    pipe.add_stage(PipelineStage("spatial correlation", 1.0, latency_cycles=400, work_items_per_frame=4_096))
    return pipe


# --- Static partition (Fig. 6) ----------------------------------------------


def pedestrian_design() -> DesignReport:
    """The static partition's pedestrian HOG+SVM engine (64x32 window)."""
    return hog_svm_design(
        name="pedestrian",
        window_cells=8,
        parallel_normalizers=2,
        n_models=1,
        feature_length=756,
        buffered_cell_rows=12,
    )


def static_design() -> DesignReport:
    """The Table-II "Static Design" row: pedestrian engine + infrastructure."""
    ped = pedestrian_design()
    blocks: list[tuple[str, ResourceVector]] = [(f"pedestrian/{n}", rv) for n, rv in ped.blocks]
    blocks.append(("video capture / format", video_io()))
    # Five AXI DMA cores (Fig. 6: two per detector + one for the PR path).
    dma = ResourceVector()
    for _ in range(5):
        dma = dma + axi_dma_core()
    blocks.append(("AXI DMA cores x5", dma))
    blocks.append(("AXI interconnect (memory)", axi_interconnect(4)))
    blocks.append(("AXI interconnect (peripheral)", axi_interconnect(3)))
    blocks.append(("PR controller + ICAP manager", icap_controller()))
    blocks.append(("PL DDR3 controller", ddr_controller_pl()))
    blocks.append(("interrupt/glue logic", ResourceVector(lut=1_200, ff=1_600)))
    return DesignReport(name="static", blocks=tuple(blocks))


def animal_design() -> DesignReport:
    """A hypothetical *animal detection* configuration for the vehicle RP.

    The paper's introduction motivates adaptivity with exactly this feature:
    "animal detection on the road could be a useful feature ... however,
    this feature might not be used in most of the times".  This design is a
    wide-window HOG+SVM variant (animals present wide aspect ratios) sized
    to demonstrate that the floor-planned partition can host additional ADS
    features with no extra fabric cost.
    """
    return hog_svm_design(
        name="animal",
        window_cells=8,
        parallel_normalizers=10,
        n_models=1,
        feature_length=2 * 1764,
        buffered_cell_rows=16,
    )


def pedestrian_pipeline(timing: VideoTiming = HDTV_TIMING, clock_hz: float = PAPER_CLOCK_HZ) -> StreamingPipeline:
    """Static-partition pedestrian pipeline timing (II = 1 at 125 MHz)."""
    pipe = StreamingPipeline(name="pedestrian", timing=timing, clock_hz=clock_hz)
    rows = timing.width
    pipe.add_stage(PipelineStage("HOG descriptor", 1.0, latency_cycles=3 * rows))
    pipe.add_stage(PipelineStage("HOG normalizer", 1.0, latency_cycles=8 * rows))
    windows = max(1, (timing.height // 8 - 7) * (timing.width // 8 - 3) // 4)
    pipe.add_stage(
        PipelineStage("SVM classifier", 1.0, latency_cycles=2_000, work_items_per_frame=windows * 189)
    )
    return pipe
