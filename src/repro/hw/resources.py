"""FPGA resource accounting: vectors, device, block-level estimators.

Models the LUT / FF / BRAM / DSP48 cost of each hardware block well enough
to regenerate the paper's Table II.  The *available* figures match the
paper's device row exactly (277 400 LUT, 554 800 FF, 755 BRAM, 2 020 DSP48 —
a Zynq-7000 XC7Z100, as on the Mini-ITX board the paper uses).

Estimators are parametric in the architecture (datapath widths, window
sizes, layer sizes), with per-block constants calibrated against the
published implementation results of the paper and its DAC'17 predecessor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ResourceError


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of the four fabric resource classes."""

    lut: int = 0
    ff: int = 0
    bram: int = 0  # 36 kb block RAMs
    dsp: int = 0  # DSP48 slices

    def __post_init__(self) -> None:
        if min(self.lut, self.ff, self.bram, self.dsp) < 0:
            raise ResourceError(f"resources must be >= 0, got {self}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """Ceil-scaled copy (floor-planning slack, replication)."""
        if factor < 0:
            raise ResourceError(f"scale factor must be >= 0, got {factor}")
        return ResourceVector(
            lut=math.ceil(self.lut * factor),
            ff=math.ceil(self.ff * factor),
            bram=math.ceil(self.bram * factor),
            dsp=math.ceil(self.dsp * factor),
        )

    def fits_in(self, budget: "ResourceVector") -> bool:
        return (
            self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.bram <= budget.bram
            and self.dsp <= budget.dsp
        )

    def max_with(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise maximum (sizing a partition over configurations)."""
        return ResourceVector(
            lut=max(self.lut, other.lut),
            ff=max(self.ff, other.ff),
            bram=max(self.bram, other.bram),
            dsp=max(self.dsp, other.dsp),
        )


@dataclass(frozen=True)
class Device:
    """An FPGA fabric's available resources."""

    name: str
    available: ResourceVector

    def utilization(self, used: ResourceVector) -> dict[str, float]:
        """Fractional utilization per resource class."""
        return {
            "LUT": used.lut / self.available.lut,
            "FF": used.ff / self.available.ff,
            "BRAM": used.bram / self.available.bram,
            "DSP48": used.dsp / self.available.dsp,
        }


# The paper's Table II device row.
ZYNQ_7Z100 = Device(
    name="XC7Z100",
    available=ResourceVector(lut=277_400, ff=554_800, bram=755, dsp=2_020),
)


# Primitive estimators ------------------------------------------------------


def bram_for_bits(bits: int) -> int:
    """36 kb BRAMs needed to hold ``bits`` (each is 36 * 1024 bits)."""
    if bits < 0:
        raise ResourceError(f"bits must be >= 0, got {bits}")
    return max(0, math.ceil(bits / (36 * 1024)))


def line_buffer(rows: int, width: int, bits_per_pixel: int) -> ResourceVector:
    """Row buffers for a sliding vertical window over a raster stream."""
    if rows < 0 or width < 1 or bits_per_pixel < 1:
        raise ResourceError("invalid line buffer geometry")
    bits = rows * width * bits_per_pixel
    # Address generators and write logic: ~30 LUT/FF per row.
    return ResourceVector(lut=30 * rows, ff=40 * rows, bram=bram_for_bits(bits), dsp=0)


def adder_tree(inputs: int, bits: int) -> ResourceVector:
    """A pipelined adder tree; LUT ~= inputs * bits, FF for pipelining."""
    if inputs < 1 or bits < 1:
        raise ResourceError("invalid adder tree geometry")
    luts = inputs * bits
    return ResourceVector(lut=luts, ff=luts, bram=0, dsp=0)


def mac_array(n_macs: int, use_dsp: bool = True, bits: int = 16) -> ResourceVector:
    """Parallel multiply-accumulate units.

    DSP48-mapped MACs cost one DSP plus a little glue; LUT-mapped MACs
    (used for narrow/binary operands) cost fabric only.
    """
    if n_macs < 0:
        raise ResourceError("n_macs must be >= 0")
    if use_dsp:
        return ResourceVector(lut=20 * n_macs, ff=30 * n_macs, bram=0, dsp=n_macs)
    return ResourceVector(lut=bits * 12 * n_macs, ff=bits * 8 * n_macs, bram=0, dsp=0)


def divider(bits: int = 16) -> ResourceVector:
    """Pipelined fixed-point divider (block normalisation)."""
    return ResourceVector(lut=bits * 25, ff=bits * 30, bram=0, dsp=1)


def sqrt_unit(bits: int = 16) -> ResourceVector:
    """Pipelined fixed-point square root (L2 norm)."""
    return ResourceVector(lut=bits * 18, ff=bits * 22, bram=0, dsp=0)


def comparator_bank(n: int, bits: int = 8) -> ResourceVector:
    """Parallel comparators (thresholding, classifiers)."""
    return ResourceVector(lut=max(1, n * bits // 2), ff=n * bits // 2, bram=0, dsp=0)


def fifo(depth_bits: int) -> ResourceVector:
    """Clock-domain / rate-matching FIFO."""
    return ResourceVector(lut=120, ff=180, bram=bram_for_bits(depth_bits), dsp=0)


def axi_dma_core() -> ResourceVector:
    """One AXI DMA (MM2S or S2MM path pair), per Xilinx IP utilization."""
    return ResourceVector(lut=1_800, ff=2_600, bram=4, dsp=0)


def axi_interconnect(n_masters: int) -> ResourceVector:
    """AXI crossbar; grows with master count."""
    if n_masters < 1:
        raise ResourceError("interconnect needs at least one master")
    return ResourceVector(lut=1_200 + 700 * n_masters, ff=1_500 + 800 * n_masters, bram=0, dsp=0)


def axi_lite_slave() -> ResourceVector:
    """Register-file control interface."""
    return ResourceVector(lut=350, ff=500, bram=0, dsp=0)


def icap_controller() -> ResourceVector:
    """The paper's PR controller: ICAP manager + glue around ICAPE2."""
    return ResourceVector(lut=850, ff=1_200, bram=2, dsp=0)


def ddr_controller_pl() -> ResourceVector:
    """PL-side DDR3 controller (MIG) for the bitstream store."""
    return ResourceVector(lut=11_000, ff=9_000, bram=3, dsp=0)


def video_io() -> ResourceVector:
    """Video in/out, pixel formatting, color conversion, sync extraction."""
    return ResourceVector(lut=3_200, ff=3_600, bram=6, dsp=9)
