"""Video timing and streaming-pipeline throughput model.

The paper's accelerators are line-buffered streaming pipelines clocked at
125 MHz that consume one pixel per cycle (initiation interval II = 1) and
therefore process HDTV at "the rate of 50 fps": a 1080p raster with standard
blanking is 2200 x 1125 = 2.475 M cycles per frame, and
125 MHz / 2.475 M = 50.5 fps.

``StreamingPipeline`` composes stages with per-pixel initiation intervals
and fixed latencies; the slowest stage's II bounds throughput, latencies add
once per frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError

# The paper's operating point.
PAPER_CLOCK_HZ = 125_000_000
HDTV_WIDTH = 1920
HDTV_HEIGHT = 1080
# CEA-861 1080p blanking geometry (2200 x 1125 total raster).
HDTV_H_BLANK = 280
HDTV_V_BLANK = 45


@dataclass(frozen=True)
class VideoTiming:
    """Active and blanked raster geometry of a video stream."""

    width: int = HDTV_WIDTH
    height: int = HDTV_HEIGHT
    h_blank: int = HDTV_H_BLANK
    v_blank: int = HDTV_V_BLANK

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise HardwareError("active raster must be positive")
        if self.h_blank < 0 or self.v_blank < 0:
            raise HardwareError("blanking must be >= 0")

    @property
    def active_pixels(self) -> int:
        return self.width * self.height

    @property
    def total_pixels(self) -> int:
        return (self.width + self.h_blank) * (self.height + self.v_blank)

    def fps_at(self, clock_hz: float, initiation_interval_cycles: float = 1.0) -> float:
        """Frame rate of an II-cycles-per-pixel pipeline at ``clock_hz``."""
        if clock_hz <= 0 or initiation_interval_cycles <= 0:
            raise HardwareError("clock and II must be positive")
        return clock_hz / (self.total_pixels * initiation_interval_cycles)


HDTV_TIMING = VideoTiming()


@dataclass(frozen=True)
class PipelineStage:
    """One hardware stage of a streaming pipeline.

    Attributes:
        name: Stage label (matches the paper's block diagrams).
        initiation_interval_cycles: Cycles between accepted inputs (1 = full rate).
        latency_cycles: Fixed pipeline fill latency, paid once per frame.
        work_items_per_frame: Items this stage processes per frame; defaults
            to the pixel count (None).  Stages running on a decimated grid
            (the sliding DBN) set this lower.
    """

    name: str
    initiation_interval_cycles: float = 1.0
    latency_cycles: int = 0
    work_items_per_frame: int | None = None

    def __post_init__(self) -> None:
        if self.initiation_interval_cycles <= 0:
            raise HardwareError(f"{self.name}: II must be positive")
        if self.latency_cycles < 0:
            raise HardwareError(f"{self.name}: latency must be >= 0")
        if self.work_items_per_frame is not None and self.work_items_per_frame < 0:
            raise HardwareError(f"{self.name}: work items must be >= 0")


@dataclass
class StreamingPipeline:
    """A chain of streaming stages fed by a video raster.

    Stages run concurrently (it is a pipeline); the *throughput* bottleneck
    is the stage with the largest cycles-per-frame demand, and the frame
    *latency* adds every stage's fill latency on top.
    """

    name: str
    timing: VideoTiming
    clock_hz: float = PAPER_CLOCK_HZ
    stages: list[PipelineStage] = field(default_factory=list)

    def add_stage(self, stage: PipelineStage) -> "StreamingPipeline":
        self.stages.append(stage)
        return self

    def stage_cycles_per_frame(self, stage: PipelineStage) -> float:
        items = stage.work_items_per_frame
        if items is None:
            items = self.timing.total_pixels
        return items * stage.initiation_interval_cycles

    @property
    def bottleneck(self) -> PipelineStage:
        if not self.stages:
            raise HardwareError(f"pipeline {self.name} has no stages")
        return max(self.stages, key=self.stage_cycles_per_frame)

    @property
    def cycles_per_frame(self) -> float:
        """Steady-state cycles between finished frames."""
        # The raster itself also bounds the rate: pixels arrive at most one
        # per cycle from the video source.
        demand = max(self.stage_cycles_per_frame(s) for s in self.stages) if self.stages else 0.0
        return max(float(self.timing.total_pixels), demand)

    @property
    def fps(self) -> float:
        return self.clock_hz / self.cycles_per_frame

    @property
    def frame_latency_cycles(self) -> float:
        """Input-to-output latency for one frame."""
        return self.cycles_per_frame + sum(s.latency_cycles for s in self.stages)

    @property
    def frame_latency_s(self) -> float:
        return self.frame_latency_cycles / self.clock_hz

    def report(self) -> dict:
        """Per-stage and whole-pipeline timing summary."""
        return {
            "name": self.name,
            "clock_mhz": self.clock_hz / 1e6,
            "fps": self.fps,
            "cycles_per_frame": self.cycles_per_frame,
            "frame_latency_ms": self.frame_latency_s * 1e3,
            "bottleneck": self.bottleneck.name,
            "stages": [
                {
                    "name": s.name,
                    "ii": s.initiation_interval_cycles,
                    "cycles_per_frame": self.stage_cycles_per_frame(s),
                    "latency": s.latency_cycles,
                }
                for s in self.stages
            ],
        }
