"""Floor-planning the reconfigurable partition.

The paper sizes one rectangular reconfigurable partition (RP) to hold the
*largest* vehicle-detection configuration — the dark design — with slack:
"since the dark configuration consumes more resources on the FPGA fabric,
about 1.2 times of its required resources is considered for the
reconfigurable module during the floor-planning."

A physical RP is a region of fabric, so its capacity comes in correlated
chunks: picking an area fraction ``a`` of the device yields roughly
``a * available`` of each class, derated by a packing efficiency for the
column-clustered resources (BRAM/DSP columns are unevenly distributed, so a
region rarely captures its pro-rata share).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ResourceError
from repro.hw.resources import Device, ResourceVector, ZYNQ_7Z100

# Fraction of a region's pro-rata BRAM/DSP share a rectangular RP actually
# captures (column clustering).
PACKING = {"lut": 1.0, "ff": 1.0, "bram": 0.9, "dsp": 0.9}

# Area granularity of region selection: Zynq-7000 PR regions snap to clock
# region rows / frame columns; 5 % of the fabric is a practical quantum.
AREA_GRANULARITY = 0.05

# The slack the paper's own Table II realises on the binding resource
# (RP LUT 45 % over dark-design LUT 40 %); the text rounds this to "1.2x".
PAPER_SLACK = 1.125


@dataclass(frozen=True)
class Partition:
    """A floor-planned reconfigurable partition.

    Attributes:
        area_fraction: Fabric area fraction the region occupies.
        capacity: Resources available inside the region.
    """

    area_fraction: float
    capacity: ResourceVector

    def fits(self, design: ResourceVector) -> bool:
        return design.fits_in(self.capacity)


def region_capacity(device: Device, area_fraction: float) -> ResourceVector:
    """Resources captured by a rectangular region of ``area_fraction``."""
    if not 0.0 < area_fraction <= 1.0:
        raise ResourceError(f"area fraction must be in (0, 1], got {area_fraction}")
    avail = device.available
    return ResourceVector(
        lut=math.floor(avail.lut * area_fraction * PACKING["lut"]),
        ff=math.floor(avail.ff * area_fraction * PACKING["ff"]),
        bram=math.floor(avail.bram * area_fraction * PACKING["bram"]),
        dsp=math.floor(avail.dsp * area_fraction * PACKING["dsp"]),
    )


def plan_partition(
    requirement: ResourceVector,
    device: Device = ZYNQ_7Z100,
    slack: float = PAPER_SLACK,
    granularity: float = AREA_GRANULARITY,
) -> Partition:
    """Smallest quantised region holding ``requirement * slack``.

    Raises :class:`ResourceError` when even the whole fabric is too small.
    """
    if slack < 1.0:
        raise ResourceError(f"slack must be >= 1, got {slack}")
    if not 0.0 < granularity <= 0.5:
        raise ResourceError(f"granularity must be in (0, 0.5], got {granularity}")
    target = requirement.scaled(slack)
    avail = device.available
    needed = 0.0
    for cls in ("lut", "ff", "bram", "dsp"):
        demand = getattr(target, cls)
        supply_per_area = getattr(avail, cls) * PACKING[cls]
        if demand > 0:
            if supply_per_area <= 0:
                raise ResourceError(f"device has no {cls} capacity")
            needed = max(needed, demand / supply_per_area)
    area = math.ceil(needed / granularity - 1e-9) * granularity
    if area > 1.0 + 1e-9:
        raise ResourceError(
            f"requirement {requirement} with slack {slack} exceeds device {device.name}"
        )
    area = min(1.0, max(granularity, area))
    capacity = region_capacity(device, area)
    if not target.fits_in(capacity):
        # Quantisation floor can undercut by a unit; widen by one quantum.
        area = min(1.0, area + granularity)
        capacity = region_capacity(device, area)
        if not target.fits_in(capacity):
            raise ResourceError(
                f"cannot floorplan {requirement} with slack {slack} on {device.name}"
            )
    return Partition(area_fraction=area, capacity=capacity)


def plan_vehicle_partition(
    configurations: list[ResourceVector],
    device: Device = ZYNQ_7Z100,
    slack: float = PAPER_SLACK,
) -> Partition:
    """Size the vehicle RP over all its configurations (elementwise max)."""
    if not configurations:
        raise ResourceError("need at least one configuration")
    worst = configurations[0]
    for rv in configurations[1:]:
        worst = worst.max_with(rv)
    return plan_partition(worst, device=device, slack=slack)
