"""Seeded fleet-spec generation.

A fleet run is defined by a list of :class:`~repro.core.spec.DriveSpec`
values; :func:`sweep_specs` builds the canonical sweep — a round-robin
cross of lighting traces and fault scenarios, with every drive's seed
derived from one fleet seed via :func:`~repro.core.spec.derive_drive_seed`
so the whole fleet is reproducible from ``(fleet_seed, count)`` alone.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.spec import TRACE_FACTORIES, DriveSpec, derive_drive_seed
from repro.errors import FleetError

#: Default fault-scenario rotation: mostly clean drives, with the two
#: scenarios the paper's evaluation leans on (DMA flakiness and a sensor
#: blackout) sprinkled through the fleet.
DEFAULT_SCENARIO_ROTATION: tuple[str | None, ...] = (
    None,
    None,
    "flaky_dma",
    None,
    "sensor_blackout",
    None,
)


def sweep_specs(
    count: int,
    fleet_seed: int = 0,
    duration_s: float = 10.0,
    traces: Sequence[str] | None = None,
    fault_scenarios: Sequence[str | None] | None = None,
    name_prefix: str = "drive",
) -> list[DriveSpec]:
    """The canonical seeded sweep of ``count`` drive specs.

    Drive ``i`` gets trace ``traces[i % len(traces)]``, fault scenario
    ``fault_scenarios[i % len(fault_scenarios)]``, and seed
    ``derive_drive_seed(fleet_seed, i)`` — independent per-drive streams
    that are stable under fleet growth (adding drives never reseeds
    existing ones).
    """
    if count < 1:
        raise FleetError(f"sweep needs at least one drive, got count={count}")
    if duration_s <= 0:
        raise FleetError(f"duration_s must be positive, got {duration_s}")
    traces = tuple(traces) if traces is not None else tuple(sorted(TRACE_FACTORIES))
    if not traces:
        raise FleetError("sweep needs at least one trace")
    rotation = (
        tuple(fault_scenarios) if fault_scenarios is not None else DEFAULT_SCENARIO_ROTATION
    )
    if not rotation:
        rotation = (None,)
    return [
        DriveSpec(
            name=f"{name_prefix}-{i:04d}",
            trace=traces[i % len(traces)],
            duration_s=duration_s,
            seed=derive_drive_seed(fleet_seed, i),
            fault_scenario=rotation[i % len(rotation)],
        )
        for i in range(count)
    ]
