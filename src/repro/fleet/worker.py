"""The fleet worker: execute one ``DriveSpec``, return one ``DriveOutcome``.

:func:`execute_spec` is the deterministic, reentrant unit of work the
scheduler shards across processes.  It materialises the drive from plain
data (:func:`repro.core.system.run_drive_spec`), digests the frame cores,
extracts the monitor verdict and latency histogram, and folds everything
into a picklable outcome dict.  A drive that raises is *contained*: the
exception becomes a ``failed`` outcome, never a dead worker.

:func:`worker_main` is the process entry point: a loop pulling
``(index, spec_dict)`` tasks from a queue and pushing
``(index, outcome_dict)`` results back.  Chaos specs
(``spec.chaos = "crash" | "hang"``) deliberately break the worker —
hard-exit or sleep past any deadline — so the scheduler's containment
paths (crash detection, timeout termination, respawn) stay honest under
test.
"""

from __future__ import annotations

import os
import queue
import time
from pathlib import Path
from typing import Any, Mapping

from repro.core.spec import DriveSpec, frames_digest
from repro.fleet.outcome import DriveOutcome
from repro.monitor.session import Monitor, MonitorConfig
from repro.monitor.slo import SloBudgets
from repro.telemetry import Stopwatch, Telemetry

#: Exit code of a chaos-crashed worker (recognisable in scheduler events).
CHAOS_EXIT_CODE = 21

#: How long a chaos ``hang`` sleeps — far past any sane drive timeout.
CHAOS_HANG_S = 3600.0

#: Task-queue poll interval.  A worker must never block forever on a
#: queue whose producer may have died; it polls and loops instead, so the
#: scheduler's containment (or a plain SIGTERM) always gets a turn.
TASK_POLL_TIMEOUT_S = 1.0


def _spec_of(spec: "DriveSpec | Mapping[str, Any]") -> DriveSpec:
    if isinstance(spec, DriveSpec):
        return spec
    return DriveSpec.from_dict(spec)


def execute_spec(
    spec: "DriveSpec | Mapping[str, Any]",
    worker_id: int | None = None,
    incidents_dir: "str | Path | None" = None,
    monitored: bool = True,
    record_latency: bool = True,
    contained: bool = True,
) -> DriveOutcome:
    """Run one drive spec to completion and fold it into an outcome.

    ``contained=True`` (the inline/reference mode) turns chaos specs into
    synthetic ``crashed``/``timeout`` outcomes instead of actually taking
    the process down — the sequential executor must survive everything the
    sharded one contains.  Workers call with ``contained=False`` so chaos
    genuinely breaks them.

    Telemetry and monitoring are observability only: the PR-2/PR-5
    non-perturbation contract (re-pinned by the fleet tests) guarantees
    the frame cores — and therefore ``frames_digest`` — are identical
    whether or not the drive is observed.
    """
    spec = _spec_of(spec)
    if spec.chaos == "crash":
        if not contained:
            os._exit(CHAOS_EXIT_CODE)
        return DriveOutcome(
            spec=spec.to_dict(),
            status="crashed",
            error="chaos: worker crash injected",
            worker_id=worker_id,
        )
    if spec.chaos == "hang":
        if not contained:
            time.sleep(CHAOS_HANG_S)
        return DriveOutcome(
            spec=spec.to_dict(),
            status="timeout",
            error="chaos: worker hang injected",
            worker_id=worker_id,
        )

    telemetry = Telemetry.recording() if record_latency else None
    monitor = None
    if monitored:
        out_dir = None
        if incidents_dir is not None:
            out_dir = str(Path(incidents_dir) / spec.name)
        monitor = Monitor(
            MonitorConfig(
                out_dir=out_dir,
                budgets=SloBudgets.for_fps(spec.fps),
                wall_clock_slos=False,
            ),
            telemetry=telemetry,
        )
    try:
        from repro.core.system import run_drive_spec

        with Stopwatch() as stopwatch:
            report = run_drive_spec(spec, telemetry=telemetry, monitor=monitor)
    except Exception as exc:  # noqa: BLE001 - containment is the contract
        return DriveOutcome(
            spec=spec.to_dict(),
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            worker_id=worker_id,
        )
    latency = None
    metrics: list = []
    if telemetry is not None and telemetry.enabled:
        latency = telemetry.metrics.histogram("frame_wall_ms").to_dict()
        metrics = telemetry.metrics.snapshot()
    verdict = monitor.verdict() if monitor is not None else {}
    incidents = [str(p) for p in monitor.bundles] if monitor is not None else []
    return DriveOutcome(
        spec=spec.to_dict(),
        status="ok",
        frames_digest=frames_digest(report.frames),
        summary=report.summary(),
        verdict=verdict,
        metrics=metrics,
        incidents=incidents,
        latency_ms=latency,
        wall_s=stopwatch.elapsed_s,
        worker_id=worker_id,
    )


def worker_main(
    worker_id: int,
    task_queue: Any,
    result_queue: Any,
    incidents_dir: str | None,
    monitored: bool,
    record_latency: bool,
) -> None:
    """Process entry point: drain tasks until the ``None`` sentinel.

    Every task is executed with ``contained=False`` — a chaos spec really
    does kill or hang this process, and the scheduler's containment turns
    that into an outcome on the parent side.
    """
    while True:
        try:
            item = task_queue.get(timeout=TASK_POLL_TIMEOUT_S)
        except queue.Empty:
            continue
        if item is None:
            return
        index, spec_dict = item
        outcome = execute_spec(
            spec_dict,
            worker_id=worker_id,
            incidents_dir=incidents_dir,
            monitored=monitored,
            record_latency=record_latency,
            contained=False,
        )
        result_queue.put((index, outcome.to_dict()))
