"""The fleet worker: execute one ``DriveSpec``, return one ``DriveOutcome``.

:func:`execute_spec` is the deterministic, reentrant unit of work the
scheduler shards across processes.  It materialises the drive from plain
data (:func:`repro.core.system.run_drive_spec`), digests the frame cores,
extracts the monitor verdict and latency histogram, and folds everything
into a picklable outcome dict.  A drive that raises is *contained*: the
exception becomes a ``failed`` outcome, never a dead worker.

:func:`worker_main` is the process entry point: a loop pulling
``(index, spec_dict)`` tasks from a queue and pushing
``(index, outcome_dict)`` results back.  When the scheduler runs with
the live plane on, the worker also owns a :class:`HeartbeatEmitter` — a
daemon thread beating plain-dict liveness records onto a dedicated
*status queue* (never the result queue; a congested side channel drops
beats, it never delays outcomes) — and writes each drive's span dump
under the fleet trace directory for cross-process stitching.

Chaos specs (``spec.chaos = "crash" | "hang" | "slow"``) deliberately
break the worker — hard-exit, go silent then sleep, or sleep while still
heartbeating — so the scheduler's containment paths (crash detection,
hung-vs-deadline timeout verdicts, respawn) stay honest under test.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.core.spec import DriveSpec, frames_digest
from repro.fleet.outcome import DriveOutcome
from repro.monitor.liveness import DEFAULT_HEARTBEAT_INTERVAL_S
from repro.monitor.session import Monitor, MonitorConfig
from repro.monitor.slo import SloBudgets
from repro.telemetry import Stopwatch, Telemetry, export_jsonl

#: Exit code of a chaos-crashed worker (recognisable in scheduler events).
CHAOS_EXIT_CODE = 21

#: How long a chaos ``hang``/``slow`` sleeps — far past any sane timeout.
CHAOS_HANG_S = 3600.0

#: Task-queue poll interval.  A worker must never block forever on a
#: queue whose producer may have died; it polls and loops instead, so the
#: scheduler's containment (or a plain SIGTERM) always gets a turn.
TASK_POLL_TIMEOUT_S = 1.0

#: How long to wait for the heartbeat thread on orderly shutdown.
_EMITTER_JOIN_TIMEOUT_S = 2.0


class HeartbeatEmitter:
    """Daemon-thread liveness beats for one worker process.

    Beats are plain dicts on the status queue: worker id, busy flag, the
    in-flight drive (index/name), and a live frame count read off the
    drive's telemetry counter.  The queue put is always non-blocking — a
    full side channel drops the beat (``queue.Full`` swallowed by
    design); liveness is judged from beat *arrival* on the scheduler
    side, so a dropped beat just ages the worker slightly.

    :meth:`wedge` silences the thread without stopping it — the chaos
    ``hang`` hook, simulating a worker wedged so hard its beats stop.
    """

    def __init__(
        self,
        worker_id: int,
        status_queue: Any,
        interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ):
        self.worker_id = worker_id
        self.interval_s = interval_s
        self._queue = status_queue
        self._lock = threading.Lock()
        self._busy = False
        self._index: int | None = None
        self._name: str | None = None
        self._metrics: Any = None
        self._stop = threading.Event()
        self._wedged = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"fleet-heartbeat-{worker_id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=_EMITTER_JOIN_TIMEOUT_S)

    def wedge(self) -> None:
        """Stop beating (chaos ``hang``): the thread lives, the beats die."""
        self._wedged.set()

    def begin_drive(self, index: int, name: str, metrics: Any = None) -> None:
        with self._lock:
            self._busy = True
            self._index = index
            self._name = name
            self._metrics = metrics
        self._send(self._progress_record(index, name, "start"))

    def attach_frames(self, metrics: Any) -> None:
        """Point the live frame count at the drive's metrics registry.

        The count is read lazily via ``registry.value("drive_frames")`` —
        a peek that never creates the series, so attaching the emitter
        cannot change the registry's creation order (which the
        deterministic metrics snapshot preserves).
        """
        with self._lock:
            self._metrics = metrics

    def end_drive(self, index: int, name: str, status: str) -> None:
        with self._lock:
            self._busy = False
            self._index = None
            self._name = None
            self._metrics = None
        self._send(self._progress_record(index, name, "done", status=status))

    def beat(self) -> None:
        with self._lock:
            registry = self._metrics
            frames = registry.value("drive_frames") if registry is not None else None
            record = {
                "kind": "fleet.worker.heartbeat",
                "worker_id": self.worker_id,
                "busy": self._busy,
                "index": self._index,
                "name": self._name,
                "frames": int(frames) if frames is not None else 0,
            }
        self._send(record)

    def _progress_record(
        self, index: int, name: str, phase: str, status: str | None = None
    ) -> dict:
        return {
            "kind": "fleet.drive.progress",
            "worker_id": self.worker_id,
            "index": index,
            "name": name,
            "phase": phase,
            "status": status,
        }

    def _send(self, record: dict) -> None:
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            pass

    def _run(self) -> None:
        while not self._stop.is_set():
            if not self._wedged.is_set():
                self.beat()
            self._stop.wait(self.interval_s)


def _spec_of(spec: "DriveSpec | Mapping[str, Any]") -> DriveSpec:
    if isinstance(spec, DriveSpec):
        return spec
    return DriveSpec.from_dict(spec)


def execute_spec(
    spec: "DriveSpec | Mapping[str, Any]",
    worker_id: int | None = None,
    incidents_dir: "str | Path | None" = None,
    monitored: bool = True,
    record_latency: bool = True,
    contained: bool = True,
    emitter: HeartbeatEmitter | None = None,
    trace_path: "str | Path | None" = None,
    drive_index: int | None = None,
    quality: bool = False,
) -> DriveOutcome:
    """Run one drive spec to completion and fold it into an outcome.

    ``contained=True`` (the inline/reference mode) turns chaos specs into
    synthetic ``crashed``/``timeout`` outcomes instead of actually taking
    the process down — the sequential executor must survive everything the
    sharded one contains.  Workers call with ``contained=False`` so chaos
    genuinely breaks them.

    ``emitter`` (sharded live plane only) gets the drive's live frame
    counter attached; ``trace_path`` dumps the drive's telemetry as JSONL
    for cross-process trace stitching.  Both are observability only: the
    PR-2/PR-5 non-perturbation contract (re-pinned by the fleet tests)
    guarantees the frame cores — and therefore ``frames_digest`` — are
    identical whether or not the drive is observed.

    ``quality=True`` attaches the seeded ground-truth observer
    (:class:`repro.quality.observer.ModelQualityObserver`) and folds its
    per-drive summary onto the outcome.  The monitor still runs with
    quality SLO evaluation *off* — fleet verdicts stay quality-blind, the
    same way ``wall_clock_slos=False`` keeps them latency-blind — so a
    scored fleet's deterministic view is byte-identical to an unscored
    one's.
    """
    spec = _spec_of(spec)
    if spec.chaos == "crash":
        if not contained:
            os._exit(CHAOS_EXIT_CODE)
        return DriveOutcome(
            spec=spec.to_dict(),
            status="crashed",
            error="chaos: worker crash injected",
            worker_id=worker_id,
        )
    if spec.chaos in ("hang", "slow"):
        if not contained:
            if spec.chaos == "hang" and emitter is not None:
                emitter.wedge()
            time.sleep(CHAOS_HANG_S)
        return DriveOutcome(
            spec=spec.to_dict(),
            status="timeout",
            error=f"chaos: worker {spec.chaos} injected",
            worker_id=worker_id,
        )

    telemetry = Telemetry.recording() if record_latency else None
    if telemetry is not None and emitter is not None:
        emitter.attach_frames(telemetry.metrics)
    monitor = None
    if monitored:
        out_dir = None
        if incidents_dir is not None:
            out_dir = str(Path(incidents_dir) / spec.name)
        monitor = Monitor(
            MonitorConfig(
                out_dir=out_dir,
                budgets=SloBudgets.for_fps(spec.fps),
                wall_clock_slos=False,
                quality_slos=False,
                trigger_on_quality=False,
            ),
            telemetry=telemetry,
        )
    observer = None
    if quality:
        from repro.quality.observer import ModelQualityObserver

        observer = ModelQualityObserver.for_spec(spec)
    try:
        from repro.core.system import run_drive_spec

        with Stopwatch() as stopwatch:
            report = run_drive_spec(
                spec, telemetry=telemetry, monitor=monitor, quality=observer
            )
    except Exception as exc:  # noqa: BLE001 - containment is the contract
        return DriveOutcome(
            spec=spec.to_dict(),
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            worker_id=worker_id,
        )
    latency = None
    metrics: list = []
    if telemetry is not None and telemetry.enabled:
        latency = telemetry.metrics.histogram("frame_wall_ms").to_dict()
        metrics = telemetry.metrics.snapshot()
        if trace_path is not None:
            telemetry.meta.update(
                {
                    "source": "fleet-worker",
                    "worker_id": worker_id,
                    "drive_index": drive_index,
                    "drive": spec.name,
                }
            )
            export_jsonl(telemetry, str(trace_path))
    verdict = monitor.verdict() if monitor is not None else {}
    incidents = [str(p) for p in monitor.bundles] if monitor is not None else []
    return DriveOutcome(
        spec=spec.to_dict(),
        status="ok",
        frames_digest=frames_digest(report.frames),
        summary=report.summary(),
        verdict=verdict,
        metrics=metrics,
        quality=observer.summary() if observer is not None else {},
        incidents=incidents,
        latency_ms=latency,
        wall_s=stopwatch.elapsed_s,
        worker_id=worker_id,
    )


def drive_trace_path(trace_dir: "str | Path", index: int) -> Path:
    """The canonical per-drive span-dump path under a fleet trace dir."""
    return Path(trace_dir) / f"drive-{index:04d}.jsonl"


def worker_main(
    worker_id: int,
    task_queue: Any,
    result_queue: Any,
    incidents_dir: str | None,
    monitored: bool,
    record_latency: bool,
    status_queue: Any = None,
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    trace_dir: str | None = None,
    quality: bool = False,
) -> None:
    """Process entry point: drain tasks until the ``None`` sentinel.

    Every task is executed with ``contained=False`` — a chaos spec really
    does kill or hang this process, and the scheduler's containment turns
    that into an outcome on the parent side.  With a ``status_queue`` the
    worker runs the live plane: a heartbeat thread plus start/done
    progress records around every drive.
    """
    emitter = None
    if status_queue is not None:
        emitter = HeartbeatEmitter(
            worker_id, status_queue, interval_s=heartbeat_interval_s
        )
        emitter.start()
    try:
        while True:
            try:
                item = task_queue.get(timeout=TASK_POLL_TIMEOUT_S)
            except queue.Empty:
                continue
            if item is None:
                return
            index, spec_dict = item
            name = str(spec_dict.get("name", "drive"))
            if emitter is not None:
                emitter.begin_drive(index, name)
            trace_path = None
            if trace_dir is not None and record_latency:
                trace_path = drive_trace_path(trace_dir, index)
            outcome = execute_spec(
                spec_dict,
                worker_id=worker_id,
                incidents_dir=incidents_dir,
                monitored=monitored,
                record_latency=record_latency,
                contained=False,
                emitter=emitter,
                trace_path=trace_path,
                drive_index=index,
                quality=quality,
            )
            if emitter is not None:
                emitter.end_drive(index, name, outcome.status)
            result_queue.put((index, outcome.to_dict()))
    finally:
        if emitter is not None:
            emitter.stop()
