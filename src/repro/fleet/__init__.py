"""repro.fleet: multiplexed many-vehicle drive service.

Shards seeded :class:`~repro.core.spec.DriveSpec` drives across worker
processes, contains worker crashes and timeouts as per-drive outcomes,
and folds everything into a schema-versioned fleet rollup
(``FLEET_*.json``).  See FLEET.md for the full design.

Unlike the simulation domains, this package is *about* wall clocks and
processes — it is deliberately outside the determinism lint fence.  The
determinism contract lives one level down: every drive it schedules is a
pure function of its spec, pinned by frame-core digests.
"""

from repro.fleet.events import FLEET_EVENT_KINDS, check_fleet_event_kind
from repro.fleet.outcome import (
    HANG_VERDICTS,
    OUTCOME_STATUSES,
    WALL_METRIC_NAMES,
    WALL_OUTCOME_FIELDS,
    DriveOutcome,
    deterministic_metrics,
    deterministic_outcome_dict,
)
from repro.fleet.rollup import (
    FLEET_SCHEMA,
    FLEET_SCHEMA_VERSION,
    WALL_ROLLUP_KEYS,
    build_rollup,
    deterministic_view,
    load_rollup,
    render_rollup,
    validate_rollup,
    write_rollup,
)
from repro.fleet.scheduler import Admission, FleetConfig, FleetScheduler, run_fleet
from repro.fleet.specs import sweep_specs
from repro.fleet.status import (
    STATUS_SCHEMA,
    STATUS_SCHEMA_VERSION,
    WALL_STATUS_KEYS,
    WORKER_STATES,
    StatusBoard,
    render_status,
    status_metrics_snapshot,
    validate_status,
)
from repro.fleet.trace import SCHEDULER_PID, stitch_fleet_trace, worker_pid
from repro.fleet.worker import HeartbeatEmitter, drive_trace_path, execute_spec

__all__ = [
    "FLEET_EVENT_KINDS",
    "FLEET_SCHEMA",
    "FLEET_SCHEMA_VERSION",
    "HANG_VERDICTS",
    "OUTCOME_STATUSES",
    "SCHEDULER_PID",
    "STATUS_SCHEMA",
    "STATUS_SCHEMA_VERSION",
    "WALL_METRIC_NAMES",
    "WALL_OUTCOME_FIELDS",
    "WALL_ROLLUP_KEYS",
    "WALL_STATUS_KEYS",
    "WORKER_STATES",
    "Admission",
    "DriveOutcome",
    "FleetConfig",
    "FleetScheduler",
    "HeartbeatEmitter",
    "StatusBoard",
    "build_rollup",
    "check_fleet_event_kind",
    "deterministic_metrics",
    "deterministic_outcome_dict",
    "deterministic_view",
    "drive_trace_path",
    "execute_spec",
    "load_rollup",
    "render_rollup",
    "render_status",
    "run_fleet",
    "status_metrics_snapshot",
    "stitch_fleet_trace",
    "sweep_specs",
    "validate_rollup",
    "validate_status",
    "worker_pid",
    "write_rollup",
]
