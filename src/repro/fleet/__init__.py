"""repro.fleet: multiplexed many-vehicle drive service.

Shards seeded :class:`~repro.core.spec.DriveSpec` drives across worker
processes, contains worker crashes and timeouts as per-drive outcomes,
and folds everything into a schema-versioned fleet rollup
(``FLEET_*.json``).  See FLEET.md for the full design.

Unlike the simulation domains, this package is *about* wall clocks and
processes — it is deliberately outside the determinism lint fence.  The
determinism contract lives one level down: every drive it schedules is a
pure function of its spec, pinned by frame-core digests.
"""

from repro.fleet.events import FLEET_EVENT_KINDS, check_fleet_event_kind
from repro.fleet.outcome import (
    OUTCOME_STATUSES,
    WALL_METRIC_NAMES,
    WALL_OUTCOME_FIELDS,
    DriveOutcome,
    deterministic_metrics,
    deterministic_outcome_dict,
)
from repro.fleet.rollup import (
    FLEET_SCHEMA,
    FLEET_SCHEMA_VERSION,
    WALL_ROLLUP_KEYS,
    build_rollup,
    deterministic_view,
    load_rollup,
    render_rollup,
    validate_rollup,
    write_rollup,
)
from repro.fleet.scheduler import Admission, FleetConfig, FleetScheduler, run_fleet
from repro.fleet.specs import sweep_specs
from repro.fleet.worker import execute_spec

__all__ = [
    "FLEET_EVENT_KINDS",
    "FLEET_SCHEMA",
    "FLEET_SCHEMA_VERSION",
    "OUTCOME_STATUSES",
    "WALL_METRIC_NAMES",
    "WALL_OUTCOME_FIELDS",
    "WALL_ROLLUP_KEYS",
    "Admission",
    "DriveOutcome",
    "FleetConfig",
    "FleetScheduler",
    "build_rollup",
    "check_fleet_event_kind",
    "deterministic_metrics",
    "deterministic_outcome_dict",
    "deterministic_view",
    "execute_spec",
    "load_rollup",
    "render_rollup",
    "run_fleet",
    "sweep_specs",
    "validate_rollup",
    "write_rollup",
]
