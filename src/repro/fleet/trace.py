"""Cross-process trace stitching: one Chrome trace for a whole fleet run.

Each worker dumps its drives' spans as JSONL under the fleet trace
directory (``drive-0007.jsonl`` — see
:func:`repro.fleet.worker.drive_trace_path`); the scheduler records its
own spans (queue-wait, admission, worker lifetime, reap) in-process.
:func:`stitch_fleet_trace` merges them into a single ``trace_event``
document renderable end to end in Perfetto / chrome://tracing.

Two choices make the stitched view honest and stable:

* **One wall timeline.** Per-drive dumps carry each span's
  ``wall_start_s``/``wall_end_s`` from ``time.perf_counter()`` —
  ``CLOCK_MONOTONIC`` on Linux, so values from forked processes share an
  epoch with the parent.  The stitcher subtracts the earliest wall start
  across *all* spans and maps seconds to trace microseconds; a drive's
  lane therefore sits exactly where it ran relative to the scheduler's
  queue-wait span above it.
* **Stable lanes.** The scheduler is pid 1; worker ``w`` is pid
  ``w + 2`` — keyed by *worker id*, not process identity, so a lane
  survives crash/timeout respawns (pinned by the pid/tid-stability
  test).  Within a pid, tids are assigned in sorted track-name order,
  so adding a span name never reshuffles existing lanes.  Inline drives
  (``worker_id`` ``None``) land in the scheduler pid — honestly: they
  really did run there.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import FleetError
from repro.telemetry import Telemetry, TelemetryDump, load_dump
from repro.telemetry.exporters import _PARENT_ID_KEY, _SPAN_ID_KEY, _WALL_MS_KEY, _track
from repro.telemetry.spans import Span

#: The scheduler's process lane in the stitched trace.
SCHEDULER_PID = 1

#: Worker lanes start here: worker ``w`` renders as pid ``w + WORKER_PID_BASE``.
WORKER_PID_BASE = 2


def worker_pid(worker_id: "int | None") -> int:
    """The stable stitched-trace pid for a worker (scheduler pid if None)."""
    if worker_id is None:
        return SCHEDULER_PID
    return int(worker_id) + WORKER_PID_BASE


def load_drive_dumps(trace_dir: "str | Path") -> list[TelemetryDump]:
    """All per-drive span dumps under a fleet trace dir, by drive index."""
    root = Path(trace_dir)
    if not root.is_dir():
        raise FleetError(f"fleet trace dir {str(root)!r} does not exist")
    return [load_dump(str(path)) for path in sorted(root.glob("drive-*.jsonl"))]


def _span_pid(span: Span, default_pid: int) -> int:
    worker = span.attrs.get("worker")
    if worker is None:
        return default_pid
    return worker_pid(int(worker))


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def stitch_fleet_trace(
    trace_dir: "str | Path",
    out_path: "str | Path",
    scheduler_telemetry: Telemetry | None = None,
) -> int:
    """Merge drive dumps + scheduler spans into one Chrome trace.

    Returns the number of ``traceEvents`` written.  The document loads
    back through :func:`repro.telemetry.load_dump` like any Chrome
    export, and opens in Perfetto with one named process lane for the
    scheduler and one per worker id.
    """
    dumps = load_drive_dumps(trace_dir)
    # (pid, process-label, track, span) for every span in the run.
    placed: list[tuple[int, str, str, Span]] = []
    for dump in dumps:
        wid = dump.meta.get("worker_id")
        pid = worker_pid(int(wid) if wid is not None else None)
        label = "fleet scheduler" if pid == SCHEDULER_PID else f"worker {int(wid)}"
        for span in dump.spans:
            placed.append((pid, label, _track(span.name), span))
    if scheduler_telemetry is not None and scheduler_telemetry.enabled:
        for span in scheduler_telemetry.tracer.spans:
            pid = _span_pid(span, SCHEDULER_PID)
            label = (
                "fleet scheduler"
                if pid == SCHEDULER_PID
                else f"worker {pid - WORKER_PID_BASE}"
            )
            placed.append((pid, label, span.name, span))
    if not placed:
        document = {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}
        Path(out_path).write_text(json.dumps(document), encoding="utf-8")
        return 0

    # One shared wall epoch: the earliest wall start across every process.
    t0_s = min(span.wall_start_s for _, _, _, span in placed)

    # Stable tids: per pid, tracks in sorted-name order.
    tracks_by_pid: dict[int, set[str]] = {}
    for pid, _, track, _ in placed:
        tracks_by_pid.setdefault(pid, set()).add(track)
    tid_of: dict[tuple[int, str], int] = {}
    for pid, tracks in tracks_by_pid.items():
        for tid, track in enumerate(sorted(tracks), start=1):
            tid_of[(pid, track)] = tid

    events: list[dict] = []
    labels_of_pid: dict[int, str] = {}
    for pid, label, track, span in placed:
        labels_of_pid.setdefault(pid, label)
        tid = tid_of[(pid, track)]
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        args[_SPAN_ID_KEY] = span.span_id
        if span.parent_id is not None:
            args[_PARENT_ID_KEY] = span.parent_id
        args[_WALL_MS_KEY] = round(span.wall_duration_s * 1e3, 6)
        wall_end_s = span.wall_end_s if span.wall_end_s is not None else span.wall_start_s
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round((span.wall_start_s - t0_s) * 1e6, 3),
                "dur": round((wall_end_s - span.wall_start_s) * 1e6, 3),
                "args": args,
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.name,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": round((span.wall_start_s - t0_s) * 1e6, 3),
                    "args": {
                        **{k: _jsonable(v) for k, v in ev.attrs.items()},
                        _PARENT_ID_KEY: span.span_id,
                    },
                }
            )
    for pid, label in sorted(labels_of_pid.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for (pid, track), tid in sorted(tid_of.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    other: dict[str, Any] = {"meta": {"source": "fleet-trace", "drives": len(dumps)}}
    if scheduler_telemetry is not None and scheduler_telemetry.enabled:
        other["metrics"] = scheduler_telemetry.metrics.snapshot()
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    Path(out_path).write_text(json.dumps(document), encoding="utf-8")
    return len(events)
