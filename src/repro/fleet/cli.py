"""The ``python -m repro fleet`` command surface.

    repro fleet run [--count N] [--workers W] [--duration S] [--seed S]
                    [--out PATH] [--incidents-dir DIR] [--timeout S]
                    [--queue-capacity N] [--no-monitor] [--no-latency]
    repro fleet report PATH
    repro fleet smoke

``run`` executes a seeded sweep and writes a schema-versioned
``FLEET_*.json`` rollup.  ``report`` renders an existing rollup.
``smoke`` is the CI gate: a small sharded run whose per-drive frame
digests are re-checked against inline in-process execution — the
byte-identity contract of the whole subsystem, at check.sh cost.

Exit codes: 0 success, 1 degraded (failed/crashed/timeout drives, or a
smoke mismatch), 2 usage / unreadable input.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import FleetError, ReproError


def _cmd_run(args) -> int:
    from repro.fleet.rollup import render_rollup, write_rollup
    from repro.fleet.scheduler import FleetConfig, run_fleet
    from repro.fleet.specs import sweep_specs

    specs = sweep_specs(args.count, fleet_seed=args.seed, duration_s=args.duration)
    config = FleetConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        drive_timeout_s=args.timeout,
        incidents_dir=args.incidents_dir,
        monitored=not args.no_monitor,
        record_latency=not args.no_latency,
    )
    rollup = run_fleet(specs, config)
    path = write_rollup(rollup, args.out)
    print(render_rollup(rollup))
    print(f"rollup -> {path}")
    not_ok = rollup["fleet"]["drives"] - rollup["fleet"]["ok"]
    return 1 if not_ok else 0


def _cmd_report(args) -> int:
    from repro.fleet.rollup import load_rollup, render_rollup

    rollup = load_rollup(args.rollup)
    print(render_rollup(rollup))
    return 0


def _cmd_smoke(args) -> int:
    """Small sharded run + schema validation + inline digest re-check."""
    from repro.fleet.outcome import DriveOutcome
    from repro.fleet.rollup import validate_rollup
    from repro.fleet.scheduler import FleetConfig, run_fleet
    from repro.fleet.specs import sweep_specs
    from repro.fleet.worker import execute_spec

    specs = sweep_specs(6, fleet_seed=7, duration_s=2.0)
    rollup = run_fleet(specs, FleetConfig(workers=2, drive_timeout_s=30.0))
    validate_rollup(rollup)
    outcomes = [DriveOutcome.from_dict(o) for o in rollup["outcomes"]]
    if len(outcomes) != len(specs):
        print(f"fleet smoke: expected {len(specs)} outcomes, got {len(outcomes)}")
        return 1
    bad = [o.name for o in outcomes if not o.ok]
    if bad:
        print(f"fleet smoke: non-ok drives {bad}")
        return 1
    # Byte-identity spot check: the sharded digests must equal inline ones.
    for spec, sharded in zip(specs[:2], outcomes[:2]):
        inline = execute_spec(spec, record_latency=False)
        if inline.frames_digest != sharded.frames_digest:
            print(
                f"fleet smoke: digest mismatch for {spec.name}: "
                f"inline {inline.frames_digest} != sharded {sharded.frames_digest}"
            )
            return 1
    print(
        f"fleet smoke ok: {rollup['fleet']['ok']}/{rollup['fleet']['drives']} drives, "
        f"{rollup['frames']['frames']} frames, digests verified inline"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Multiplexed many-vehicle drive service (see FLEET.md).",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    run = sub.add_parser("run", help="execute a seeded sweep and write a rollup")
    run.add_argument("--count", type=int, default=64, help="drives in the sweep")
    run.add_argument("--workers", type=int, default=4, help="worker processes (0 = inline)")
    run.add_argument("--duration", type=float, default=10.0, help="per-drive sim seconds")
    run.add_argument("--seed", type=int, default=0, help="fleet seed")
    run.add_argument("--out", default="FLEET_run.json", help="rollup output path")
    run.add_argument("--incidents-dir", default=None, help="incident-bundle directory")
    run.add_argument("--timeout", type=float, default=60.0, help="per-drive wall deadline (s)")
    run.add_argument("--queue-capacity", type=int, default=256, help="admission queue bound")
    run.add_argument("--no-monitor", action="store_true", help="run drives unmonitored")
    run.add_argument("--no-latency", action="store_true", help="skip latency histograms")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser("report", help="render an existing FLEET_*.json rollup")
    report.add_argument("rollup", help="path to the rollup artefact")
    report.set_defaults(func=_cmd_report)

    smoke = sub.add_parser("smoke", help="sharded mini-run + inline digest re-check")
    smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        return args.func(args)
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro fleet
    sys.exit(main())
