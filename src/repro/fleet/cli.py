"""The ``python -m repro fleet`` command surface.

    repro fleet run [--count N] [--workers W] [--duration S] [--seed S]
                    [--out PATH] [--incidents-dir DIR] [--timeout S]
                    [--queue-capacity N] [--no-monitor] [--no-latency]
                    [--no-stream] [--status-out PATH] [--metrics-out PATH]
                    [--trace-dir DIR] [--trace-out PATH] [--quality]
    repro fleet top [--once] [--status-in PATH] [run options...]
    repro fleet report PATH
    repro fleet smoke

``run`` executes a seeded sweep and writes a schema-versioned
``FLEET_*.json`` rollup; the live-plane flags stream status snapshots
(JSONL), an OpenMetrics exposition, and a stitched Chrome trace while it
does.  ``top`` is the live view: it either drives a sweep itself and
refreshes a status screen per snapshot (``--once`` prints just the final
snapshot), or renders snapshots from an existing ``--status-in`` JSONL
stream.  ``report`` renders an existing rollup.  ``smoke`` is the CI
gate: a small sharded run whose per-drive frame digests are re-checked
against inline in-process execution — the byte-identity contract of the
whole subsystem, at check.sh cost.

Exit codes: 0 success, 1 degraded (failed/crashed/timeout drives, or a
smoke mismatch), 2 usage / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import FleetError, ReproError

#: ANSI clear-screen + cursor-home prefix for the refreshing live view.
_CLEAR = "\x1b[2J\x1b[H"


def _cmd_run(args) -> int:
    from repro.fleet.rollup import render_rollup, write_rollup
    from repro.fleet.scheduler import FleetConfig, run_fleet
    from repro.fleet.specs import sweep_specs

    specs = sweep_specs(args.count, fleet_seed=args.seed, duration_s=args.duration)
    config = FleetConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        drive_timeout_s=args.timeout,
        incidents_dir=args.incidents_dir,
        monitored=not args.no_monitor,
        record_latency=not args.no_latency,
        streaming=not args.no_stream,
        status_interval_s=args.status_interval,
        trace_dir=args.trace_dir,
        quality=args.quality,
    )
    rollup = run_fleet(
        specs,
        config,
        status_out=args.status_out,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )
    path = write_rollup(rollup, args.out)
    print(render_rollup(rollup))
    print(f"rollup -> {path}")
    not_ok = rollup["fleet"]["drives"] - rollup["fleet"]["ok"]
    return 1 if not_ok else 0


#: ``top`` without ``--once`` following a ``--status-in`` stream gives up
#: after this much time with no fresh snapshot (the writer likely died).
_FOLLOW_IDLE_TIMEOUT_S = 30.0


def _cmd_top_stream(args) -> int:
    """Render snapshots from an existing ``--status-out`` JSONL stream."""
    from pathlib import Path

    from repro.fleet.status import render_status, validate_status

    def latest() -> "dict | None":
        try:
            text = Path(args.status_in).read_text(encoding="utf-8")
        except OSError as exc:
            raise FleetError(
                f"cannot read status stream {args.status_in!r}: {exc}"
            ) from exc
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return None
        try:
            return json.loads(lines[-1])
        except json.JSONDecodeError as exc:
            raise FleetError(
                f"malformed status line in {args.status_in!r}: {exc}"
            ) from exc

    if args.once:
        snapshot = latest()
        if snapshot is None:
            print(f"fleet top: no snapshots in {args.status_in}")
            return 1
        validate_status(snapshot)
        print(render_status(snapshot))
        return 0
    shown: "dict | None" = None
    idle_deadline_s = time.monotonic() + _FOLLOW_IDLE_TIMEOUT_S
    while True:
        snapshot = latest()
        if snapshot is not None and snapshot != shown:
            validate_status(snapshot)
            print(_CLEAR + render_status(snapshot), flush=True)
            shown = snapshot
            idle_deadline_s = time.monotonic() + _FOLLOW_IDLE_TIMEOUT_S
            if snapshot.get("phase") == "done":
                return 0
        if time.monotonic() > idle_deadline_s:
            print("fleet top: status stream idle, giving up")
            return 1
        time.sleep(0.2)


def _cmd_top(args) -> int:
    """Drive a sweep with the live plane on and show its status snapshots."""
    if args.status_in is not None:
        return _cmd_top_stream(args)

    from repro.fleet.scheduler import (
        FleetConfig,
        FleetScheduler,
        _status_jsonl_listener,
    )
    from repro.fleet.specs import sweep_specs
    from repro.fleet.status import render_status, validate_status

    if args.workers < 1:
        raise FleetError(
            "fleet top needs at least one worker (the live plane is sharded-only)"
        )
    specs = sweep_specs(args.count, fleet_seed=args.seed, duration_s=args.duration)
    config = FleetConfig(
        workers=args.workers,
        drive_timeout_s=args.timeout,
        status_interval_s=args.status_interval,
    )
    scheduler = FleetScheduler(config)
    if not args.once:
        scheduler.status_listeners.append(
            lambda snapshot: print(_CLEAR + render_status(snapshot), flush=True)
        )
    if args.status_out is not None:
        from pathlib import Path

        Path(args.status_out).write_text("", encoding="utf-8")
        scheduler.status_listeners.append(_status_jsonl_listener(args.status_out))
    scheduler.submit_all(specs)
    outcomes = scheduler.run()
    final = scheduler.last_status
    if final is None:
        print("fleet top: no status snapshots published")
        return 1
    validate_status(final)
    print(render_status(final))
    return 0 if all(o.ok for o in outcomes) else 1


def _cmd_report(args) -> int:
    from repro.fleet.rollup import load_rollup, render_rollup

    rollup = load_rollup(args.rollup)
    print(render_rollup(rollup))
    return 0


def _cmd_smoke(args) -> int:
    """Small sharded run + schema validation + inline digest re-check."""
    from repro.fleet.outcome import DriveOutcome
    from repro.fleet.rollup import validate_rollup
    from repro.fleet.scheduler import FleetConfig, run_fleet
    from repro.fleet.specs import sweep_specs
    from repro.fleet.worker import execute_spec

    specs = sweep_specs(6, fleet_seed=7, duration_s=2.0)
    rollup = run_fleet(specs, FleetConfig(workers=2, drive_timeout_s=30.0))
    validate_rollup(rollup)
    outcomes = [DriveOutcome.from_dict(o) for o in rollup["outcomes"]]
    if len(outcomes) != len(specs):
        print(f"fleet smoke: expected {len(specs)} outcomes, got {len(outcomes)}")
        return 1
    bad = [o.name for o in outcomes if not o.ok]
    if bad:
        print(f"fleet smoke: non-ok drives {bad}")
        return 1
    # Byte-identity spot check: the sharded digests must equal inline ones.
    for spec, sharded in zip(specs[:2], outcomes[:2]):
        inline = execute_spec(spec, record_latency=False)
        if inline.frames_digest != sharded.frames_digest:
            print(
                f"fleet smoke: digest mismatch for {spec.name}: "
                f"inline {inline.frames_digest} != sharded {sharded.frames_digest}"
            )
            return 1
    print(
        f"fleet smoke ok: {rollup['fleet']['ok']}/{rollup['fleet']['drives']} drives, "
        f"{rollup['frames']['frames']} frames, digests verified inline"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Multiplexed many-vehicle drive service (see FLEET.md).",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    run = sub.add_parser("run", help="execute a seeded sweep and write a rollup")
    run.add_argument("--count", type=int, default=64, help="drives in the sweep")
    run.add_argument("--workers", type=int, default=4, help="worker processes (0 = inline)")
    run.add_argument("--duration", type=float, default=10.0, help="per-drive sim seconds")
    run.add_argument("--seed", type=int, default=0, help="fleet seed")
    run.add_argument("--out", default="FLEET_run.json", help="rollup output path")
    run.add_argument("--incidents-dir", default=None, help="incident-bundle directory")
    run.add_argument("--timeout", type=float, default=60.0, help="per-drive wall deadline (s)")
    run.add_argument("--queue-capacity", type=int, default=256, help="admission queue bound")
    run.add_argument(
        "--quality",
        action="store_true",
        help="score drives against modelled ground truth (see QUALITY.md)",
    )
    run.add_argument("--no-monitor", action="store_true", help="run drives unmonitored")
    run.add_argument("--no-latency", action="store_true", help="skip latency histograms")
    run.add_argument("--no-stream", action="store_true", help="disable the live plane")
    run.add_argument(
        "--status-interval",
        type=float,
        default=1.0,
        help="seconds between FleetStatus snapshots",
    )
    run.add_argument(
        "--status-out", default=None, help="append status snapshots as JSONL here"
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        help="rewrite an OpenMetrics exposition here per snapshot",
    )
    run.add_argument(
        "--trace-dir", default=None, help="directory for per-drive span dumps"
    )
    run.add_argument(
        "--trace-out",
        default=None,
        help="stitch drive + scheduler spans into one Chrome trace here",
    )
    run.set_defaults(func=_cmd_run)

    top = sub.add_parser("top", help="live fleet status view (see FLEET.md)")
    top.add_argument(
        "--once", action="store_true", help="print only the final snapshot"
    )
    top.add_argument(
        "--status-in",
        default=None,
        help="render snapshots from an existing --status-out JSONL stream "
        "instead of running a sweep",
    )
    top.add_argument("--count", type=int, default=8, help="drives in the sweep")
    top.add_argument("--workers", type=int, default=2, help="worker processes (>= 1)")
    top.add_argument("--duration", type=float, default=2.0, help="per-drive sim seconds")
    top.add_argument("--seed", type=int, default=0, help="fleet seed")
    top.add_argument("--timeout", type=float, default=60.0, help="per-drive wall deadline (s)")
    top.add_argument(
        "--status-interval",
        type=float,
        default=0.25,
        help="seconds between screen refreshes / snapshots",
    )
    top.add_argument(
        "--status-out", default=None, help="also append snapshots as JSONL here"
    )
    top.set_defaults(func=_cmd_top)

    report = sub.add_parser("report", help="render an existing FLEET_*.json rollup")
    report.add_argument("rollup", help="path to the rollup artefact")
    report.set_defaults(func=_cmd_report)

    smoke = sub.add_parser("smoke", help="sharded mini-run + inline digest re-check")
    smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        return args.func(args)
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro fleet
    sys.exit(main())
