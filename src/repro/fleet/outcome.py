"""``DriveOutcome``: the compact, picklable result of one fleet drive.

An outcome is everything the aggregator needs and nothing it does not:
the spec that produced it, a status, the drive's frame-core digest (the
byte-identity comparator from :mod:`repro.core.spec`), the deterministic
drive summary, the monitor verdict, a per-frame wall-latency histogram,
a compact telemetry snapshot, and harvested incident-bundle paths.  It
crosses the worker->scheduler process boundary as a plain dict.

Wall-clock-valued fields are segregated so determinism tests (and the
rollup's ``deterministic_view``) can strip them: ``latency_ms``,
``wall_s``, ``worker_id``, and the few metric series that are themselves
wall-derived (``frame_wall_ms``, ``stage_wall_ms``,
``frame_deadline_misses_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import FleetError

#: Legal outcome statuses.  ``ok`` is the only success; everything else is
#: a contained failure — the run keeps going either way.
OUTCOME_STATUSES = ("ok", "failed", "crashed", "timeout", "rejected")

#: Outcome dict keys whose values are wall-clock-derived (stripped by
#: :func:`deterministic_outcome_dict`).  ``hang_verdict`` and
#: ``last_heartbeat_age_s`` describe the *execution* of a timed-out drive
#: (did heartbeats stop, and how stale was the last one) — liveness is a
#: wall-clock property, so both stay out of the deterministic view.
WALL_OUTCOME_FIELDS = (
    "latency_ms",
    "wall_s",
    "worker_id",
    "hang_verdict",
    "last_heartbeat_age_s",
)

#: Legal ``hang_verdict`` values for ``timeout`` outcomes: ``hung`` means
#: the worker's heartbeats stopped before the deadline fired; ``deadline``
#: means the worker was still beating — slow, not wedged.
HANG_VERDICTS = ("hung", "deadline")

#: Metric series that carry wall-clock measurements and therefore vary
#: run to run even for a byte-identical drive.
WALL_METRIC_NAMES = frozenset(
    {"frame_wall_ms", "stage_wall_ms", "frame_deadline_misses_total"}
)

#: Outcome dict keys that exist only when the quality plane is attached
#: (stripped by :func:`deterministic_outcome_dict`): the deterministic
#: view of a quality-scored drive must be byte-identical to the view of
#: the same drive unscored — the quality plane's non-perturbation
#: contract, the exact analogue of the wall-clock strip above.
QUALITY_OUTCOME_FIELDS = ("quality",)

#: Metric series emitted only by the quality plane (stripped alongside
#: the wall series for the same on-vs-off byte-identity reason).
QUALITY_METRIC_NAMES = frozenset(
    {
        "quality_frames_scored_total",
        "quality_tp_total",
        "quality_fp_total",
        "quality_fn_total",
        "detection_iou",
    }
)


@dataclass
class DriveOutcome:
    """One drive's result, ready to fold into a fleet rollup.

    Attributes:
        spec: The producing :class:`~repro.core.spec.DriveSpec` as a dict.
        status: One of :data:`OUTCOME_STATUSES`.
        frames_digest: SHA-256 chain over the drive's frame cores
            (``None`` when the drive produced no frames).
        summary: :meth:`DriveReport.summary` output (sim-deterministic).
        verdict: :meth:`Monitor.verdict` output (sim-deterministic when
            the monitor runs with ``wall_clock_slos=False``, the fleet
            default); empty dict for unmonitored drives.
        metrics: Telemetry metric snapshot (plain dicts; empty when the
            drive ran unobserved).
        quality: Per-drive detection-quality summary from the quality
            plane (:func:`repro.quality.records.fold_records` output);
            empty dict for unscored drives.  Sim-deterministic, but
            stripped from the deterministic view so scored and unscored
            fleets compare byte-identically.
        incidents: Incident-bundle paths harvested from the drive.
        error: Failure detail for non-``ok`` statuses.
        latency_ms: ``frame_wall_ms`` histogram dict (wall-clock).
        wall_s: Wall-clock duration of the drive (wall-clock).
        worker_id: Executing worker (scheduling-dependent).
        hang_verdict: For ``timeout`` outcomes with the live plane on:
            ``"hung"`` (heartbeats stopped) or ``"deadline"`` (still
            beating, just slow).  ``None`` otherwise (wall-clock).
        last_heartbeat_age_s: Age of the worker's last heartbeat when the
            timeout was contained; ``None`` when streaming was off
            (wall-clock).
    """

    spec: dict
    status: str
    frames_digest: str | None = None
    summary: dict = field(default_factory=dict)
    verdict: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)
    quality: dict = field(default_factory=dict)
    incidents: list = field(default_factory=list)
    error: str = ""
    latency_ms: dict | None = None
    wall_s: float | None = None
    worker_id: int | None = None
    hang_verdict: str | None = None
    last_heartbeat_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATUSES:
            raise FleetError(
                f"unknown outcome status {self.status!r} (one of {OUTCOME_STATUSES})"
            )
        if self.hang_verdict is not None and self.hang_verdict not in HANG_VERDICTS:
            raise FleetError(
                f"unknown hang_verdict {self.hang_verdict!r} (one of {HANG_VERDICTS})"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def name(self) -> str:
        return str(self.spec.get("name", "drive"))

    def to_dict(self) -> dict:
        return {
            "spec": dict(self.spec),
            "status": self.status,
            "frames_digest": self.frames_digest,
            "summary": dict(self.summary),
            "verdict": dict(self.verdict),
            "metrics": list(self.metrics),
            "quality": dict(self.quality),
            "incidents": list(self.incidents),
            "error": self.error,
            "latency_ms": self.latency_ms,
            "wall_s": self.wall_s,
            "worker_id": self.worker_id,
            "hang_verdict": self.hang_verdict,
            "last_heartbeat_age_s": self.last_heartbeat_age_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DriveOutcome":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise FleetError(
                f"unknown DriveOutcome fields: {sorted(unknown)} (known: {sorted(known)})"
            )
        return cls(**dict(data))


def deterministic_metrics(series: Iterable[Mapping]) -> list[dict]:
    """Drop wall-clock-derived and quality-plane series from a snapshot."""
    return [
        dict(s)
        for s in series
        if s.get("name") not in WALL_METRIC_NAMES
        and s.get("name") not in QUALITY_METRIC_NAMES
    ]


def deterministic_outcome_dict(outcome: "DriveOutcome | Mapping[str, Any]") -> dict:
    """An outcome dict with every wall-clock-derived field stripped.

    What remains is a pure function of the spec: two executions of the
    same spec — different workers, different runs, different machines —
    produce equal deterministic dicts.  The fleet determinism tests
    compare exactly this.
    """
    data = outcome.to_dict() if isinstance(outcome, DriveOutcome) else dict(outcome)
    for key in WALL_OUTCOME_FIELDS + QUALITY_OUTCOME_FIELDS:
        data.pop(key, None)
    data["metrics"] = deterministic_metrics(data.get("metrics", []))
    return data
