"""Fleet rollups: fold many ``DriveOutcome`` values into one artefact.

The rollup is the fleet's single answer-sheet: counts by status, fleet
frame totals, health/SLO aggregates, merged fault counters, the merged
per-frame wall-latency histogram with p50/p90/p99, harvested incident
paths, and the full outcome list — all under a schema-versioned envelope
(``FLEET_SCHEMA`` / ``FLEET_SCHEMA_VERSION``) written as ``FLEET_*.json``.

Wall-clock-derived sections are segregated under the keys in
:data:`WALL_ROLLUP_KEYS` so :func:`deterministic_view` can strip them:
what remains is a pure function of the spec list, byte-identical between
a sharded run and the sequential inline reference run (the acceptance
test of this subsystem).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.errors import FleetError
from repro.fleet.events import FLEET_EVENT_KINDS
from repro.fleet.outcome import (
    OUTCOME_STATUSES,
    DriveOutcome,
    deterministic_metrics,
    deterministic_outcome_dict,
)
from repro.quality.records import merge_summaries
from repro.telemetry.metrics import merge_snapshots

FLEET_SCHEMA = "repro.fleet/rollup"
# v2: the required "quality" section (merged per-condition detection
# quality from scored drives; scored_drives == 0 for unscored fleets).
FLEET_SCHEMA_VERSION = 2

#: Top-level rollup keys whose values depend on wall clocks or scheduling
#: (stripped by :func:`deterministic_view`, together with ``config`` and
#: ``events_by_kind`` which encode *how* the fleet ran, not what it
#: computed).
WALL_ROLLUP_KEYS = ("latency_ms", "wall")

#: Top-level rollup keys that exist only when the quality plane is on
#: (stripped by :func:`deterministic_view` so a scored fleet's view
#: byte-matches an unscored one's; sharded-vs-inline quality equality is
#: asserted separately on the full rollup).
QUALITY_ROLLUP_KEYS = ("quality",)

#: Keys every rollup must carry (validation contract).
REQUIRED_ROLLUP_KEYS = (
    "schema",
    "schema_version",
    "config",
    "fleet",
    "frames",
    "health",
    "faults",
    "quality",
    "latency_ms",
    "metrics",
    "incidents",
    "events_by_kind",
    "wall",
    "outcomes",
)

#: Drive-summary counters summed fleet-wide into the ``frames`` section.
_FRAME_SUM_KEYS = (
    "frames",
    "vehicle_dropped",
    "pedestrian_dropped",
    "condition_changes",
    "model_swaps",
    "reconfigurations",
    "failed_reconfigurations",
    "degradations",
    "frames_degraded",
    "frames_with_faults",
)


def _as_outcome(value: "DriveOutcome | Mapping") -> DriveOutcome:
    return value if isinstance(value, DriveOutcome) else DriveOutcome.from_dict(value)


def build_rollup(
    outcomes: Sequence["DriveOutcome | Mapping"],
    rejected: Sequence["DriveOutcome | Mapping"] = (),
    events_by_kind: Mapping[str, int] | None = None,
    config: "object | None" = None,
    elapsed_s: float | None = None,
) -> dict:
    """Fold drive outcomes (plus admission rejections) into one rollup."""
    folded = [_as_outcome(o) for o in outcomes]
    rejections = [_as_outcome(o) for o in rejected]
    for outcome in rejections:
        if outcome.status != "rejected":
            raise FleetError(
                f"rejected list carries status {outcome.status!r} (want 'rejected')"
            )

    by_status: dict[str, int] = {}
    for outcome in folded:
        by_status[outcome.status] = by_status.get(outcome.status, 0) + 1

    frames = {key: 0 for key in _FRAME_SUM_KEYS}
    for outcome in folded:
        for key in _FRAME_SUM_KEYS:
            frames[key] += int(outcome.summary.get(key, 0))

    health_by_state: dict[str, int] = {}
    violations_by_slo: dict[str, int] = {}
    violations_total = 0
    breached = 0
    triggers = 0
    incidents_count = 0
    for outcome in folded:
        verdict = outcome.verdict
        if not verdict:
            continue
        state = str(verdict.get("state", "unknown"))
        health_by_state[state] = health_by_state.get(state, 0) + 1
        drive_violations = int(verdict.get("violations", 0))
        violations_total += drive_violations
        if drive_violations:
            breached += 1
        for slo, n in dict(verdict.get("violations_by_slo", {})).items():
            violations_by_slo[slo] = violations_by_slo.get(slo, 0) + int(n)
        triggers += int(verdict.get("triggers", 0))
        incidents_count += int(verdict.get("incidents", 0))
    monitored_drives = sum(1 for o in folded if o.verdict)

    latency = merge_snapshots(
        *([o.latency_ms] for o in folded if o.latency_ms is not None)
    )
    metrics = merge_snapshots(
        *(deterministic_metrics(o.metrics) for o in folded if o.metrics)
    )
    incident_paths = [path for o in folded for path in o.incidents]

    wall_s_values = [o.wall_s for o in folded if o.wall_s is not None]
    elapsed = float(elapsed_s) if elapsed_s is not None else sum(wall_s_values)
    executed = len(folded)

    # The live plane's hung-vs-deadline split for timeout outcomes.
    # "unknown" counts timeouts contained with streaming off (no
    # heartbeats, so no verdict to give).
    timeouts_by_verdict: dict[str, int] = {}
    for outcome in folded:
        if outcome.status != "timeout":
            continue
        verdict_key = outcome.hang_verdict or "unknown"
        timeouts_by_verdict[verdict_key] = timeouts_by_verdict.get(verdict_key, 0) + 1

    config_dict: dict = {}
    if config is not None:
        config_dict = config.to_dict() if hasattr(config, "to_dict") else dict(config)  # type: ignore[arg-type]

    return {
        "schema": FLEET_SCHEMA,
        "schema_version": FLEET_SCHEMA_VERSION,
        "config": config_dict,
        "fleet": {
            "drives": executed,
            "ok": by_status.get("ok", 0),
            "by_status": by_status,
            "rejected": len(rejections),
        },
        "frames": frames,
        "health": {
            "monitored_drives": monitored_drives,
            "by_state": health_by_state,
            "slo_violations": violations_total,
            "slo_violations_by_slo": violations_by_slo,
            "breach_rate": breached / monitored_drives if monitored_drives else 0.0,
            "triggers": triggers,
            "incidents": incidents_count,
        },
        "faults": {
            "frames_with_faults": frames["frames_with_faults"],
            "degradations": frames["degradations"],
            "frames_degraded": frames["frames_degraded"],
            "failed_reconfigurations": frames["failed_reconfigurations"],
        },
        # Merged detection quality over every scored drive.  The fold is
        # shard-order-independent (ConfusionCounts.merge is associative
        # and commutative), so sharded and inline runs agree exactly.
        "quality": merge_summaries(o.quality for o in folded if o.quality),
        "latency_ms": latency[0] if latency else None,
        "metrics": metrics,
        "incidents": incident_paths,
        "events_by_kind": dict(events_by_kind or {}),
        "wall": {
            "elapsed_s": elapsed,
            "drive_wall_s": sum(wall_s_values),
            "drives_per_s": executed / elapsed if elapsed > 0 else 0.0,
            "timeouts_by_verdict": timeouts_by_verdict,
        },
        "outcomes": [o.to_dict() for o in folded] + [o.to_dict() for o in rejections],
    }


def deterministic_view(rollup: Mapping) -> dict:
    """The rollup minus everything wall-clock- or scheduling-dependent.

    Two runs of the same spec list — different worker counts, machines,
    or wall speeds — produce equal deterministic views.  The fleet
    determinism tests compare exactly this (sharded vs inline).
    """
    view = {
        key: value
        for key, value in rollup.items()
        if key not in WALL_ROLLUP_KEYS
        and key not in QUALITY_ROLLUP_KEYS
        and key not in ("config", "events_by_kind")
    }
    view["outcomes"] = [
        deterministic_outcome_dict(o) for o in rollup.get("outcomes", [])
    ]
    return view


def validate_rollup(rollup: Mapping) -> None:
    """Reject structurally broken rollups (schema gate for readers)."""
    if not isinstance(rollup, Mapping):
        raise FleetError(f"rollup must be a mapping, got {type(rollup).__name__}")
    missing = [key for key in REQUIRED_ROLLUP_KEYS if key not in rollup]
    if missing:
        raise FleetError(f"rollup is missing required keys: {missing}")
    if rollup["schema"] != FLEET_SCHEMA:
        raise FleetError(
            f"unknown rollup schema {rollup['schema']!r} (want {FLEET_SCHEMA!r})"
        )
    if rollup["schema_version"] != FLEET_SCHEMA_VERSION:
        raise FleetError(
            f"unsupported rollup schema version {rollup['schema_version']!r} "
            f"(this reader understands {FLEET_SCHEMA_VERSION})"
        )
    for status in rollup["fleet"].get("by_status", {}):
        if status not in OUTCOME_STATUSES:
            raise FleetError(f"rollup carries unknown outcome status {status!r}")
    for kind in rollup["events_by_kind"]:
        if kind not in FLEET_EVENT_KINDS:
            raise FleetError(f"rollup carries unknown fleet event kind {kind!r}")
    for outcome in rollup["outcomes"]:
        _as_outcome(outcome)  # field + status validation


def write_rollup(rollup: Mapping, path: "str | Path") -> Path:
    """Validate and write one ``FLEET_*.json`` artefact."""
    validate_rollup(rollup)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rollup, indent=2, sort_keys=True) + "\n")
    return path


def load_rollup(path: "str | Path") -> dict:
    """Read and validate a rollup artefact."""
    try:
        rollup = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FleetError(f"cannot load rollup {path}: {exc}") from exc
    validate_rollup(rollup)
    return rollup


def render_rollup(rollup: Mapping) -> str:
    """A compact human-readable report of one rollup."""
    fleet = rollup["fleet"]
    health = rollup["health"]
    wall = rollup["wall"]
    lines = [
        f"fleet rollup (schema v{rollup['schema_version']})",
        f"  drives: {fleet['drives']} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(fleet['by_status'].items())) or 'none'};"
        f" rejected={fleet['rejected']})",
        f"  frames: {rollup['frames']['frames']} "
        f"(degraded={rollup['frames']['frames_degraded']}, "
        f"with_faults={rollup['frames']['frames_with_faults']})",
        f"  health: breach_rate={health['breach_rate']:.3f} "
        f"violations={health['slo_violations']} "
        f"incidents={health['incidents']} "
        f"states={dict(sorted(health['by_state'].items())) or '{}'}",
    ]
    latency = rollup.get("latency_ms")
    if latency:
        percentiles = latency.get("percentiles", {})
        shown = " ".join(
            f"{name}={percentiles[name]:.2f}ms"
            for name in ("p50", "p90", "p99")
            if name in percentiles
        )
        lines.append(f"  frame latency: {shown or 'n/a'} (n={latency.get('count', 0)})")
    lines.append(
        f"  wall: {wall['elapsed_s']:.2f}s elapsed, "
        f"{wall['drives_per_s']:.2f} drives/s"
    )
    quality = rollup.get("quality") or {}
    if quality.get("scored_drives"):
        overall = quality.get("overall") or {}
        by_condition = quality.get("by_condition") or {}
        parts = [
            f"recall={overall.get('recall', 0.0):.3f}",
            f"precision={overall.get('precision', 0.0):.3f}",
        ]
        parts.extend(
            f"{condition}={row.get('recall', 0.0):.3f}"
            for condition, row in sorted(by_condition.items())
        )
        lines.append(
            f"  quality ({quality['scored_drives']} scored, "
            f"{quality.get('sampled_frames', 0)} frames): " + " ".join(parts)
        )
    timeouts = wall.get("timeouts_by_verdict") or {}
    if timeouts:
        lines.append(
            "  timeouts: "
            + ", ".join(f"{v} {k}" for k, v in sorted(timeouts.items()))
        )
    if rollup["incidents"]:
        lines.append(f"  incident bundles: {len(rollup['incidents'])}")
    return "\n".join(lines)
