"""The fleet scheduler: shard seeded drive specs across worker processes.

Admission control first: :meth:`FleetScheduler.submit` either admits a
spec into a bounded queue or rejects it with a reason (backpressure is a
first-class answer, not an exception).  :meth:`FleetScheduler.run` then
drains the queue across ``workers`` forked processes — or inline, in
submission order, when ``workers=0`` (the sequential reference mode the
determinism tests compare against).

Containment is the scheduler's core promise: a worker that crashes
mid-drive or overruns the per-drive deadline costs exactly one outcome
(``crashed`` / ``timeout``), never the run — the worker is replaced and
the remaining drives proceed.  Every lifecycle step is emitted through
:meth:`~FleetScheduler.fleet_event` using the declared
:data:`~repro.fleet.events.FLEET_EVENT_KINDS` vocabulary.

With ``streaming`` on (the default) the sharded path also runs the *live
plane*: workers heartbeat over a dedicated status queue, the scheduler
folds beats and progress records into a :class:`~repro.fleet.status.
StatusBoard`, publishes periodic ``FleetStatus`` snapshots to
``status_listeners``, and uses heartbeat liveness to split timeout
containment into ``hung`` (beats stopped) versus ``deadline`` (still
beating, just slow).  The plane is wall-clock side-channel by
construction — it can change *when* things are observed, never *what*
the drives compute — so ``deterministic_view`` and ``frames_digest``
stay byte-identical with streaming on or off (pinned by the
non-perturbation acceptance test).

Results are keyed by submission index, so the outcome list is ordered by
submission regardless of which worker finished which drive when.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.core.spec import DriveSpec
from repro.errors import FleetError
from repro.fleet.events import check_fleet_event_kind
from repro.fleet.outcome import DriveOutcome
from repro.fleet.status import StatusBoard
from repro.fleet.worker import execute_spec, worker_main
from repro.monitor.liveness import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_HUNG_AFTER_S,
    DEFAULT_SUSPECT_AFTER_S,
    LivenessConfig,
)
from repro.telemetry import Telemetry

#: Bound on every process ``join`` in the scheduler.  Joins happen on
#: dead or just-terminated workers, so they normally return instantly —
#: the timeout (plus the ``kill`` escalation in :func:`_reap`) is the
#: guarantee that a wedged child can never hang the whole fleet.
JOIN_TIMEOUT_S = 5.0

#: Capacity of the heartbeat/progress side channel.  Workers drop beats
#: when it is full (``put_nowait``), so the bound caps memory without
#: ever back-pressuring drive execution.
STATUS_QUEUE_CAPACITY = 4096


def _reap(process: Any) -> None:
    """Join ``process`` with a bounded wait, escalating to SIGKILL."""
    process.join(timeout=JOIN_TIMEOUT_S)
    if process.is_alive():
        process.kill()
        process.join(timeout=JOIN_TIMEOUT_S)


@dataclass(frozen=True)
class FleetConfig:
    """How a fleet run executes (not *what* it runs — that is the specs).

    Attributes:
        workers: Worker process count; ``0`` runs every drive inline in
            the scheduler process (the deterministic reference mode).
        queue_capacity: Bound on admitted-but-unexecuted specs; admission
            beyond it is rejected with a reason.
        drive_timeout_s: Per-drive wall-clock deadline; an overrunning
            worker is terminated and the drive recorded as ``timeout``.
        incidents_dir: Directory for per-drive incident bundles
            (``None`` keeps monitoring in-memory only).
        monitored: Attach a ``wall_clock_slos=False`` monitor to each
            drive (sim-deterministic verdicts).
        record_latency: Record per-frame wall-latency histograms.
        quality: Attach the seeded ground-truth quality observer to each
            drive and fold per-drive quality summaries into outcomes,
            rollups, and live status.  Observation only: verdicts stay
            quality-blind (workers run with ``quality_slos=False``) and
            the rollup's ``deterministic_view`` strips every
            quality-derived value, so a scored fleet byte-matches an
            unscored one.
        poll_interval_s: Scheduler idle-poll period while waiting on
            workers.
        streaming: Run the live plane (worker heartbeats, status
            snapshots, hung-vs-deadline timeout verdicts) in sharded
            mode.  Inline mode has no worker processes, hence no plane.
        heartbeat_interval_s: Cadence workers beat at.
        suspect_after_s: Heartbeat age past which a running worker is
            reported ``suspect`` (must exceed the beat interval).
        hung_after_s: Heartbeat age past which a running worker is
            judged ``hung`` (must exceed ``suspect_after_s``).
        status_interval_s: How often the scheduler publishes a
            ``FleetStatus`` snapshot to its listeners.
        trace_dir: Directory for per-drive span dumps (and the stitched
            fleet trace inputs); also enables scheduler-side spans.
    """

    workers: int = 4
    queue_capacity: int = 256
    drive_timeout_s: float = 60.0
    incidents_dir: str | None = None
    monitored: bool = True
    record_latency: bool = True
    quality: bool = False
    poll_interval_s: float = 0.02
    streaming: bool = True
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    suspect_after_s: float = DEFAULT_SUSPECT_AFTER_S
    hung_after_s: float = DEFAULT_HUNG_AFTER_S
    status_interval_s: float = 1.0
    trace_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise FleetError(f"workers must be >= 0, got {self.workers}")
        if self.queue_capacity < 1:
            raise FleetError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.drive_timeout_s <= 0:
            raise FleetError(f"drive_timeout_s must be positive, got {self.drive_timeout_s}")
        if self.poll_interval_s <= 0:
            raise FleetError(f"poll_interval_s must be positive, got {self.poll_interval_s}")
        if self.status_interval_s <= 0:
            raise FleetError(
                f"status_interval_s must be positive, got {self.status_interval_s}"
            )
        if self.heartbeat_interval_s <= 0:
            raise FleetError(
                f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}"
            )
        if self.suspect_after_s <= self.heartbeat_interval_s:
            raise FleetError(
                f"suspect_after_s ({self.suspect_after_s}) must exceed "
                f"heartbeat_interval_s ({self.heartbeat_interval_s})"
            )
        if self.hung_after_s <= self.suspect_after_s:
            raise FleetError(
                f"hung_after_s ({self.hung_after_s}) must exceed "
                f"suspect_after_s ({self.suspect_after_s})"
            )

    def liveness(self) -> LivenessConfig:
        return LivenessConfig(
            heartbeat_interval_s=self.heartbeat_interval_s,
            suspect_after_s=self.suspect_after_s,
            hung_after_s=self.hung_after_s,
        )

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "drive_timeout_s": self.drive_timeout_s,
            "incidents_dir": self.incidents_dir,
            "monitored": self.monitored,
            "record_latency": self.record_latency,
            "quality": self.quality,
            "poll_interval_s": self.poll_interval_s,
            "streaming": self.streaming,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "suspect_after_s": self.suspect_after_s,
            "hung_after_s": self.hung_after_s,
            "status_interval_s": self.status_interval_s,
            "trace_dir": self.trace_dir,
        }


@dataclass(frozen=True)
class Admission:
    """The answer admission control gives every submitted spec."""

    accepted: bool
    index: int | None = None
    reason: str = ""


@dataclass
class _WorkerSlot:
    """One worker process plus the task it is currently executing."""

    worker_id: int
    process: Any = None
    task_queue: Any = None
    current: "tuple[int, dict] | None" = None  # (index, spec_dict)
    deadline_s: float = 0.0
    spawned: int = 0
    lifetime_span: Any = None

    @property
    def busy(self) -> bool:
        return self.current is not None


class FleetScheduler:
    """Admit specs, shard them across workers, collect outcomes."""

    def __init__(self, config: FleetConfig | None = None):
        self.config = config if config is not None else FleetConfig()
        self.pending: list[tuple[int, dict]] = []
        self.events: list[dict] = []
        self.events_by_kind: dict[str, int] = {}
        self.rejected: list[DriveOutcome] = []
        #: Callables invoked with each published ``FleetStatus`` snapshot.
        self.status_listeners: list[Callable[[dict], None]] = []
        #: The live plane's fold (sharded streaming runs only).
        self.board: StatusBoard | None = None
        #: The most recently published status snapshot.
        self.last_status: dict | None = None
        #: Scheduler-side telemetry (only when ``trace_dir`` is set).
        self.telemetry: Telemetry | None = None
        if self.config.trace_dir is not None:
            self.telemetry = Telemetry.recording(meta={"source": "fleet-scheduler"})
        self._queue_spans: dict[int, Any] = {}
        self._status_queue: Any = None
        self._submitted = 0
        self._finished = False

    # Events -----------------------------------------------------------------

    def fleet_event(self, kind: str, **attrs: Any) -> None:
        """Record one scheduler lifecycle event (vocabulary-checked)."""
        check_fleet_event_kind(kind)
        self.events.append({"kind": kind, **attrs})
        self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1

    def _count_event(self, kind: str) -> None:
        """Count a high-rate side-channel kind without logging each one."""
        check_fleet_event_kind(kind)
        self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1

    # Admission --------------------------------------------------------------

    def submit(self, spec: "DriveSpec | Mapping[str, Any]") -> Admission:
        """Admit one spec into the bounded queue, or reject with a reason."""
        spec_dict = spec.to_dict() if isinstance(spec, DriveSpec) else DriveSpec.from_dict(spec).to_dict()
        if self._finished:
            reason = "run finished: scheduler no longer accepts submissions"
        elif len(self.pending) >= self.config.queue_capacity:
            reason = (
                f"queue full: {len(self.pending)}/{self.config.queue_capacity} "
                "specs pending (backpressure)"
            )
        else:
            index = self._submitted
            self._submitted += 1
            self.pending.append((index, spec_dict))
            self.fleet_event("fleet.submit", index=index, name=spec_dict["name"])
            if self.telemetry is not None:
                self._queue_spans[index] = self.telemetry.tracer.begin(
                    "fleet.queue.wait", index=index, drive=spec_dict["name"]
                )
            return Admission(accepted=True, index=index)
        self.fleet_event("fleet.reject", name=spec_dict["name"], reason=reason)
        if self.telemetry is not None:
            self.telemetry.tracer.event(
                "fleet.admission.reject", drive=spec_dict["name"]
            )
        self.rejected.append(
            DriveOutcome(spec=spec_dict, status="rejected", error=reason)
        )
        return Admission(accepted=False, reason=reason)

    def submit_all(self, specs: Iterable["DriveSpec | Mapping[str, Any]"]) -> list[Admission]:
        return [self.submit(spec) for spec in specs]

    # Execution --------------------------------------------------------------

    def run(self) -> list[DriveOutcome]:
        """Drain the admitted queue; one outcome per admitted spec.

        Outcomes come back ordered by submission index.  The scheduler is
        single-shot: after ``run`` returns, further submissions are
        rejected.
        """
        tasks = list(self.pending)
        self.pending = []
        self.fleet_event(
            "fleet.run.start", drives=len(tasks), workers=self.config.workers
        )
        run_span = None
        if self.telemetry is not None:
            run_span = self.telemetry.tracer.begin(
                "fleet.run", drives=len(tasks), workers=self.config.workers
            )
        if self.config.workers == 0:
            outcomes = self._run_inline(tasks)
        else:
            outcomes = self._run_sharded(tasks)
        self._finished = True
        by_status: dict[str, int] = {}
        for outcome in outcomes:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        if self.telemetry is not None:
            for span in self._queue_spans.values():
                self.telemetry.tracer.end(span)
            self._queue_spans.clear()
            self.telemetry.tracer.end(run_span, by_status=str(by_status))
        self.fleet_event("fleet.run.done", drives=len(outcomes), by_status=by_status)
        return outcomes

    def _end_queue_span(self, index: int, worker_id: int | None = None) -> None:
        span = self._queue_spans.pop(index, None)
        if span is not None and self.telemetry is not None:
            if worker_id is not None:
                span.set_attr("worker", worker_id)
            self.telemetry.tracer.end(span)

    def _run_inline(self, tasks: list[tuple[int, dict]]) -> list[DriveOutcome]:
        """Sequential in-process reference executor (chaos contained)."""
        outcomes: list[DriveOutcome] = []
        for index, spec_dict in tasks:
            self.fleet_event("fleet.drive.start", index=index, name=spec_dict["name"])
            self._end_queue_span(index)
            outcome = execute_spec(
                spec_dict,
                worker_id=None,
                incidents_dir=self.config.incidents_dir,
                monitored=self.config.monitored,
                record_latency=self.config.record_latency,
                contained=True,
                quality=self.config.quality,
            )
            outcomes.append(outcome)
            self.fleet_event(
                "fleet.drive.done", index=index, name=spec_dict["name"], status=outcome.status
            )
        return outcomes

    def _run_sharded(self, tasks: list[tuple[int, dict]]) -> list[DriveOutcome]:
        """Shard tasks across forked workers with crash/timeout containment."""
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        streaming = self.config.streaming
        if streaming:
            self._status_queue = ctx.Queue(STATUS_QUEUE_CAPACITY)
            self.board = StatusBoard(
                liveness=self.config.liveness(), now_s=time.monotonic()
            )
        slots = [_WorkerSlot(worker_id=wid) for wid in range(self.config.workers)]
        for slot in slots:
            slot.task_queue = ctx.Queue()
            self._spawn(ctx, slot, result_queue)
        backlog = list(reversed(tasks))  # pop() from the front of submission order
        results: dict[int, DriveOutcome] = {}
        total = len(tasks)
        next_status_s = time.monotonic() + self.config.status_interval_s
        try:
            while len(results) < total:
                self._dispatch(slots, backlog)
                progressed = self._drain_results(result_queue, slots, results)
                now_s = time.monotonic()
                self._drain_status(now_s)
                progressed |= self._contain_failures(ctx, slots, results, result_queue)
                if streaming and now_s >= next_status_s:
                    self._publish_status(now_s, len(backlog), phase="running")
                    next_status_s = now_s + self.config.status_interval_s
                if not progressed:
                    time.sleep(self.config.poll_interval_s)
        finally:
            self._shutdown(slots)
            if streaming:
                self._drain_status(time.monotonic())
                self._publish_status(time.monotonic(), len(backlog), phase="done")
                self._status_queue = None
        return [results[index] for index, _ in tasks]

    def _spawn(self, ctx: Any, slot: _WorkerSlot, result_queue: Any) -> None:
        slot.process = ctx.Process(
            target=worker_main,
            args=(
                slot.worker_id,
                slot.task_queue,
                result_queue,
                self.config.incidents_dir,
                self.config.monitored,
                self.config.record_latency,
                self._status_queue,
                self.config.heartbeat_interval_s,
                self.config.trace_dir,
                self.config.quality,
            ),
            daemon=True,
        )
        slot.process.start()
        slot.spawned += 1
        if self.board is not None:
            self.board.ensure_worker(
                slot.worker_id, time.monotonic(), respawn=slot.spawned > 1
            )
        if self.telemetry is not None:
            slot.lifetime_span = self.telemetry.tracer.begin(
                "fleet.worker.lifetime",
                worker=slot.worker_id,
                generation=slot.spawned,
            )
        self.fleet_event(
            "fleet.worker.spawn", worker=slot.worker_id, generation=slot.spawned
        )

    def _reap_slot(self, slot: _WorkerSlot) -> None:
        """Reap a slot's process, closing its lifetime/reap spans."""
        reap_span = None
        if self.telemetry is not None:
            reap_span = self.telemetry.tracer.begin(
                "fleet.reap", worker=slot.worker_id
            )
        _reap(slot.process)
        if self.telemetry is not None:
            self.telemetry.tracer.end(reap_span)
            if slot.lifetime_span is not None:
                self.telemetry.tracer.end(slot.lifetime_span)
                slot.lifetime_span = None

    def _dispatch(self, slots: list[_WorkerSlot], backlog: list[tuple[int, dict]]) -> None:
        for slot in slots:
            if not backlog:
                return
            if slot.busy:
                continue
            index, spec_dict = backlog.pop()
            slot.current = (index, spec_dict)
            slot.deadline_s = time.monotonic() + self.config.drive_timeout_s
            slot.task_queue.put((index, spec_dict))
            if self.board is not None:
                self.board.mark_dispatch(
                    slot.worker_id, index, spec_dict["name"], time.monotonic()
                )
            self._end_queue_span(index, worker_id=slot.worker_id)
            self.fleet_event(
                "fleet.drive.start",
                index=index,
                name=spec_dict["name"],
                worker=slot.worker_id,
            )

    def _drain_results(
        self,
        result_queue: Any,
        slots: list[_WorkerSlot],
        results: dict[int, DriveOutcome],
    ) -> bool:
        progressed = False
        while True:
            try:
                index, outcome_dict = result_queue.get_nowait()
            except queue.Empty:
                return progressed
            outcome = DriveOutcome.from_dict(outcome_dict)
            results[index] = outcome
            progressed = True
            for slot in slots:
                if slot.current is not None and slot.current[0] == index:
                    slot.current = None
                    break
            if self.board is not None:
                self.board.record_outcome(outcome, time.monotonic())
            self.fleet_event(
                "fleet.drive.done",
                index=index,
                name=outcome.name,
                status=outcome.status,
            )

    def _drain_status(self, now_s: float) -> None:
        """Fold every queued heartbeat/progress record into the board."""
        if self._status_queue is None or self.board is None:
            return
        while True:
            try:
                record = self._status_queue.get_nowait()
            except queue.Empty:
                break
            self.board.ingest(record, now_s)
            self._count_event(str(record.get("kind")))
        for view in self.board.take_new_suspects(now_s):
            self.fleet_event(
                "fleet.worker.suspect",
                worker=view.worker_id,
                index=view.drive_index,
                name=view.drive_name,
                heartbeat_age_s=round(view.heartbeat_age_s(now_s), 6),
            )

    def _publish_status(self, now_s: float, backlog: int, phase: str) -> None:
        """Snapshot the board and hand it to every status listener."""
        if self.board is None:
            return
        snapshot = self.board.snapshot(
            now_s,
            backlog=backlog,
            capacity=self.config.queue_capacity,
            submitted=self._submitted,
            rejected=len(self.rejected),
            phase=phase,
        )
        self.last_status = snapshot
        self._count_event("fleet.status.snapshot")
        for listener in self.status_listeners:
            listener(snapshot)

    def _contain_failures(
        self,
        ctx: Any,
        slots: list[_WorkerSlot],
        results: dict[int, DriveOutcome],
        result_queue: Any,
    ) -> bool:
        """Turn dead/overrunning workers into outcomes and respawn them."""
        progressed = False
        now_s = time.monotonic()
        for slot in slots:
            if not slot.busy:
                continue
            index, spec_dict = slot.current  # type: ignore[misc]
            if not slot.process.is_alive():
                # A worker only exits mid-task by dying; its in-flight
                # drive becomes a crashed outcome and the slot respawns.
                exit_code = slot.process.exitcode
                self._reap_slot(slot)
                results[index] = DriveOutcome(
                    spec=spec_dict,
                    status="crashed",
                    error=f"worker {slot.worker_id} died (exit code {exit_code})",
                    worker_id=slot.worker_id,
                )
                self.fleet_event(
                    "fleet.worker.crash",
                    worker=slot.worker_id,
                    index=index,
                    name=spec_dict["name"],
                    exit_code=exit_code,
                )
                slot.current = None
                self._spawn(ctx, slot, result_queue)
                progressed = True
            elif now_s > slot.deadline_s:
                # Heartbeat liveness splits the old catch-all "timeout":
                # a hung worker went silent mid-drive; a deadline worker
                # was still beating — slow, not wedged.
                hang_verdict = None
                beat_age_s = None
                if self.board is not None:
                    view = self.board.workers.get(slot.worker_id)
                    if view is not None:
                        beat_age_s = round(view.heartbeat_age_s(now_s), 6)
                        hang_verdict = (
                            "hung"
                            if view.liveness.state(now_s) == "hung"
                            else "deadline"
                        )
                slot.process.terminate()
                self._reap_slot(slot)
                results[index] = DriveOutcome(
                    spec=spec_dict,
                    status="timeout",
                    error=(
                        f"drive exceeded {self.config.drive_timeout_s}s deadline "
                        f"on worker {slot.worker_id}"
                    ),
                    worker_id=slot.worker_id,
                    hang_verdict=hang_verdict,
                    last_heartbeat_age_s=beat_age_s,
                )
                self.fleet_event(
                    "fleet.worker.timeout",
                    worker=slot.worker_id,
                    index=index,
                    name=spec_dict["name"],
                    hang_verdict=hang_verdict,
                    last_heartbeat_age_s=beat_age_s,
                )
                slot.current = None
                self._spawn(ctx, slot, result_queue)
                progressed = True
        return progressed

    def _shutdown(self, slots: list[_WorkerSlot]) -> None:
        for slot in slots:
            if slot.process is None:
                continue
            if slot.process.is_alive():
                slot.task_queue.put(None)
        for slot in slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():
                slot.process.terminate()
            self._reap_slot(slot)


def _status_jsonl_listener(path: "str | Path") -> Callable[[dict], None]:
    """A status listener appending each snapshot as one sorted-key JSON line."""

    def write(snapshot: dict) -> None:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(snapshot, sort_keys=True) + "\n")

    return write


def _metrics_exposition_listener(path: "str | Path") -> Callable[[dict], None]:
    """A status listener rewriting an OpenMetrics exposition per snapshot."""
    from repro.fleet.status import status_metrics_snapshot
    from repro.telemetry.openmetrics import write_exposition

    def write(snapshot: dict) -> None:
        write_exposition(status_metrics_snapshot(snapshot), str(path))

    return write


def run_fleet(
    specs: Iterable["DriveSpec | Mapping[str, Any]"],
    config: FleetConfig | None = None,
    status_out: "str | Path | None" = None,
    metrics_out: "str | Path | None" = None,
    trace_out: "str | Path | None" = None,
) -> dict:
    """Submit, execute, and roll up a fleet in one call.

    Returns the schema-versioned rollup dict (see
    :func:`repro.fleet.rollup.build_rollup`); rejected submissions appear
    in it as ``rejected`` outcomes alongside the executed drives.

    The live-plane outputs are all optional: ``status_out`` appends one
    ``FleetStatus`` JSON line per published snapshot, ``metrics_out``
    rewrites an OpenMetrics exposition per snapshot, and ``trace_out``
    stitches the per-drive span dumps plus the scheduler's own spans into
    one Chrome trace after the run (using ``config.trace_dir``, or a
    temporary directory when unset).
    """
    from repro.fleet.rollup import build_rollup
    from repro.telemetry import Stopwatch

    config = config if config is not None else FleetConfig()
    scratch_trace_dir = None
    if trace_out is not None and config.trace_dir is None:
        scratch_trace_dir = tempfile.TemporaryDirectory(prefix="fleet-trace-")
        config = replace(config, trace_dir=scratch_trace_dir.name)
    try:
        scheduler = FleetScheduler(config)
        if status_out is not None:
            Path(status_out).write_text("", encoding="utf-8")
            scheduler.status_listeners.append(_status_jsonl_listener(status_out))
        if metrics_out is not None:
            scheduler.status_listeners.append(_metrics_exposition_listener(metrics_out))
        scheduler.submit_all(specs)
        with Stopwatch() as stopwatch:
            outcomes = scheduler.run()
        if trace_out is not None:
            from repro.fleet.trace import stitch_fleet_trace

            n_events = stitch_fleet_trace(
                config.trace_dir, str(trace_out), scheduler_telemetry=scheduler.telemetry
            )
            scheduler.fleet_event(
                "fleet.trace.stitch", path=str(trace_out), events=n_events
            )
        return build_rollup(
            outcomes,
            rejected=scheduler.rejected,
            events_by_kind=scheduler.events_by_kind,
            config=scheduler.config,
            elapsed_s=stopwatch.elapsed_s,
        )
    finally:
        if scratch_trace_dir is not None:
            scratch_trace_dir.cleanup()
