"""The fleet scheduler: shard seeded drive specs across worker processes.

Admission control first: :meth:`FleetScheduler.submit` either admits a
spec into a bounded queue or rejects it with a reason (backpressure is a
first-class answer, not an exception).  :meth:`FleetScheduler.run` then
drains the queue across ``workers`` forked processes — or inline, in
submission order, when ``workers=0`` (the sequential reference mode the
determinism tests compare against).

Containment is the scheduler's core promise: a worker that crashes
mid-drive or overruns the per-drive deadline costs exactly one outcome
(``crashed`` / ``timeout``), never the run — the worker is replaced and
the remaining drives proceed.  Every lifecycle step is emitted through
:meth:`~FleetScheduler.fleet_event` using the declared
:data:`~repro.fleet.events.FLEET_EVENT_KINDS` vocabulary.

Results are keyed by submission index, so the outcome list is ordered by
submission regardless of which worker finished which drive when.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.spec import DriveSpec
from repro.errors import FleetError
from repro.fleet.events import check_fleet_event_kind
from repro.fleet.outcome import DriveOutcome
from repro.fleet.worker import execute_spec, worker_main

#: Bound on every process ``join`` in the scheduler.  Joins happen on
#: dead or just-terminated workers, so they normally return instantly —
#: the timeout (plus the ``kill`` escalation in :func:`_reap`) is the
#: guarantee that a wedged child can never hang the whole fleet.
JOIN_TIMEOUT_S = 5.0


def _reap(process: Any) -> None:
    """Join ``process`` with a bounded wait, escalating to SIGKILL."""
    process.join(timeout=JOIN_TIMEOUT_S)
    if process.is_alive():
        process.kill()
        process.join(timeout=JOIN_TIMEOUT_S)


@dataclass(frozen=True)
class FleetConfig:
    """How a fleet run executes (not *what* it runs — that is the specs).

    Attributes:
        workers: Worker process count; ``0`` runs every drive inline in
            the scheduler process (the deterministic reference mode).
        queue_capacity: Bound on admitted-but-unexecuted specs; admission
            beyond it is rejected with a reason.
        drive_timeout_s: Per-drive wall-clock deadline; an overrunning
            worker is terminated and the drive recorded as ``timeout``.
        incidents_dir: Directory for per-drive incident bundles
            (``None`` keeps monitoring in-memory only).
        monitored: Attach a ``wall_clock_slos=False`` monitor to each
            drive (sim-deterministic verdicts).
        record_latency: Record per-frame wall-latency histograms.
        poll_interval_s: Scheduler idle-poll period while waiting on
            workers.
    """

    workers: int = 4
    queue_capacity: int = 256
    drive_timeout_s: float = 60.0
    incidents_dir: str | None = None
    monitored: bool = True
    record_latency: bool = True
    poll_interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise FleetError(f"workers must be >= 0, got {self.workers}")
        if self.queue_capacity < 1:
            raise FleetError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.drive_timeout_s <= 0:
            raise FleetError(f"drive_timeout_s must be positive, got {self.drive_timeout_s}")
        if self.poll_interval_s <= 0:
            raise FleetError(f"poll_interval_s must be positive, got {self.poll_interval_s}")

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "drive_timeout_s": self.drive_timeout_s,
            "incidents_dir": self.incidents_dir,
            "monitored": self.monitored,
            "record_latency": self.record_latency,
            "poll_interval_s": self.poll_interval_s,
        }


@dataclass(frozen=True)
class Admission:
    """The answer admission control gives every submitted spec."""

    accepted: bool
    index: int | None = None
    reason: str = ""


@dataclass
class _WorkerSlot:
    """One worker process plus the task it is currently executing."""

    worker_id: int
    process: Any = None
    task_queue: Any = None
    current: "tuple[int, dict] | None" = None  # (index, spec_dict)
    deadline_s: float = 0.0
    spawned: int = 0

    @property
    def busy(self) -> bool:
        return self.current is not None


class FleetScheduler:
    """Admit specs, shard them across workers, collect outcomes."""

    def __init__(self, config: FleetConfig | None = None):
        self.config = config if config is not None else FleetConfig()
        self.pending: list[tuple[int, dict]] = []
        self.events: list[dict] = []
        self.events_by_kind: dict[str, int] = {}
        self.rejected: list[DriveOutcome] = []
        self._submitted = 0
        self._finished = False

    # Events -----------------------------------------------------------------

    def fleet_event(self, kind: str, **attrs: Any) -> None:
        """Record one scheduler lifecycle event (vocabulary-checked)."""
        check_fleet_event_kind(kind)
        self.events.append({"kind": kind, **attrs})
        self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1

    # Admission --------------------------------------------------------------

    def submit(self, spec: "DriveSpec | Mapping[str, Any]") -> Admission:
        """Admit one spec into the bounded queue, or reject with a reason."""
        spec_dict = spec.to_dict() if isinstance(spec, DriveSpec) else DriveSpec.from_dict(spec).to_dict()
        if self._finished:
            reason = "run finished: scheduler no longer accepts submissions"
        elif len(self.pending) >= self.config.queue_capacity:
            reason = (
                f"queue full: {len(self.pending)}/{self.config.queue_capacity} "
                "specs pending (backpressure)"
            )
        else:
            index = self._submitted
            self._submitted += 1
            self.pending.append((index, spec_dict))
            self.fleet_event("fleet.submit", index=index, name=spec_dict["name"])
            return Admission(accepted=True, index=index)
        self.fleet_event("fleet.reject", name=spec_dict["name"], reason=reason)
        self.rejected.append(
            DriveOutcome(spec=spec_dict, status="rejected", error=reason)
        )
        return Admission(accepted=False, reason=reason)

    def submit_all(self, specs: Iterable["DriveSpec | Mapping[str, Any]"]) -> list[Admission]:
        return [self.submit(spec) for spec in specs]

    # Execution --------------------------------------------------------------

    def run(self) -> list[DriveOutcome]:
        """Drain the admitted queue; one outcome per admitted spec.

        Outcomes come back ordered by submission index.  The scheduler is
        single-shot: after ``run`` returns, further submissions are
        rejected.
        """
        tasks = list(self.pending)
        self.pending = []
        self.fleet_event(
            "fleet.run.start", drives=len(tasks), workers=self.config.workers
        )
        if self.config.workers == 0:
            outcomes = self._run_inline(tasks)
        else:
            outcomes = self._run_sharded(tasks)
        self._finished = True
        by_status: dict[str, int] = {}
        for outcome in outcomes:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        self.fleet_event("fleet.run.done", drives=len(outcomes), by_status=by_status)
        return outcomes

    def _run_inline(self, tasks: list[tuple[int, dict]]) -> list[DriveOutcome]:
        """Sequential in-process reference executor (chaos contained)."""
        outcomes: list[DriveOutcome] = []
        for index, spec_dict in tasks:
            self.fleet_event("fleet.drive.start", index=index, name=spec_dict["name"])
            outcome = execute_spec(
                spec_dict,
                worker_id=None,
                incidents_dir=self.config.incidents_dir,
                monitored=self.config.monitored,
                record_latency=self.config.record_latency,
                contained=True,
            )
            outcomes.append(outcome)
            self.fleet_event(
                "fleet.drive.done", index=index, name=spec_dict["name"], status=outcome.status
            )
        return outcomes

    def _run_sharded(self, tasks: list[tuple[int, dict]]) -> list[DriveOutcome]:
        """Shard tasks across forked workers with crash/timeout containment."""
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        slots = [_WorkerSlot(worker_id=wid) for wid in range(self.config.workers)]
        for slot in slots:
            slot.task_queue = ctx.Queue()
            self._spawn(ctx, slot, result_queue)
        backlog = list(reversed(tasks))  # pop() from the front of submission order
        results: dict[int, DriveOutcome] = {}
        total = len(tasks)
        try:
            while len(results) < total:
                self._dispatch(slots, backlog)
                progressed = self._drain_results(result_queue, slots, results)
                progressed |= self._contain_failures(ctx, slots, results, result_queue)
                if not progressed:
                    time.sleep(self.config.poll_interval_s)
        finally:
            self._shutdown(slots)
        return [results[index] for index, _ in tasks]

    def _spawn(self, ctx: Any, slot: _WorkerSlot, result_queue: Any) -> None:
        slot.process = ctx.Process(
            target=worker_main,
            args=(
                slot.worker_id,
                slot.task_queue,
                result_queue,
                self.config.incidents_dir,
                self.config.monitored,
                self.config.record_latency,
            ),
            daemon=True,
        )
        slot.process.start()
        slot.spawned += 1
        self.fleet_event(
            "fleet.worker.spawn", worker=slot.worker_id, generation=slot.spawned
        )

    def _dispatch(self, slots: list[_WorkerSlot], backlog: list[tuple[int, dict]]) -> None:
        for slot in slots:
            if not backlog:
                return
            if slot.busy:
                continue
            index, spec_dict = backlog.pop()
            slot.current = (index, spec_dict)
            slot.deadline_s = time.monotonic() + self.config.drive_timeout_s
            slot.task_queue.put((index, spec_dict))
            self.fleet_event(
                "fleet.drive.start",
                index=index,
                name=spec_dict["name"],
                worker=slot.worker_id,
            )

    def _drain_results(
        self,
        result_queue: Any,
        slots: list[_WorkerSlot],
        results: dict[int, DriveOutcome],
    ) -> bool:
        progressed = False
        while True:
            try:
                index, outcome_dict = result_queue.get_nowait()
            except queue.Empty:
                return progressed
            outcome = DriveOutcome.from_dict(outcome_dict)
            results[index] = outcome
            progressed = True
            for slot in slots:
                if slot.current is not None and slot.current[0] == index:
                    slot.current = None
                    break
            self.fleet_event(
                "fleet.drive.done",
                index=index,
                name=outcome.name,
                status=outcome.status,
            )

    def _contain_failures(
        self,
        ctx: Any,
        slots: list[_WorkerSlot],
        results: dict[int, DriveOutcome],
        result_queue: Any,
    ) -> bool:
        """Turn dead/overrunning workers into outcomes and respawn them."""
        progressed = False
        now_s = time.monotonic()
        for slot in slots:
            if not slot.busy:
                continue
            index, spec_dict = slot.current  # type: ignore[misc]
            if not slot.process.is_alive():
                # A worker only exits mid-task by dying; its in-flight
                # drive becomes a crashed outcome and the slot respawns.
                exit_code = slot.process.exitcode
                _reap(slot.process)
                results[index] = DriveOutcome(
                    spec=spec_dict,
                    status="crashed",
                    error=f"worker {slot.worker_id} died (exit code {exit_code})",
                    worker_id=slot.worker_id,
                )
                self.fleet_event(
                    "fleet.worker.crash",
                    worker=slot.worker_id,
                    index=index,
                    name=spec_dict["name"],
                    exit_code=exit_code,
                )
                slot.current = None
                self._spawn(ctx, slot, result_queue)
                progressed = True
            elif now_s > slot.deadline_s:
                slot.process.terminate()
                _reap(slot.process)
                results[index] = DriveOutcome(
                    spec=spec_dict,
                    status="timeout",
                    error=(
                        f"drive exceeded {self.config.drive_timeout_s}s deadline "
                        f"on worker {slot.worker_id}"
                    ),
                    worker_id=slot.worker_id,
                )
                self.fleet_event(
                    "fleet.worker.timeout",
                    worker=slot.worker_id,
                    index=index,
                    name=spec_dict["name"],
                )
                slot.current = None
                self._spawn(ctx, slot, result_queue)
                progressed = True
        return progressed

    def _shutdown(self, slots: list[_WorkerSlot]) -> None:
        for slot in slots:
            if slot.process is None:
                continue
            if slot.process.is_alive():
                slot.task_queue.put(None)
        for slot in slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():
                slot.process.terminate()
                _reap(slot.process)


def run_fleet(
    specs: Iterable["DriveSpec | Mapping[str, Any]"],
    config: FleetConfig | None = None,
) -> dict:
    """Submit, execute, and roll up a fleet in one call.

    Returns the schema-versioned rollup dict (see
    :func:`repro.fleet.rollup.build_rollup`); rejected submissions appear
    in it as ``rejected`` outcomes alongside the executed drives.
    """
    from repro.fleet.rollup import build_rollup
    from repro.telemetry import Stopwatch

    scheduler = FleetScheduler(config)
    scheduler.submit_all(specs)
    with Stopwatch() as stopwatch:
        outcomes = scheduler.run()
    return build_rollup(
        outcomes,
        rejected=scheduler.rejected,
        events_by_kind=scheduler.events_by_kind,
        config=scheduler.config,
        elapsed_s=stopwatch.elapsed_s,
    )
