"""The fleet's live status plane: fold side-channel records into snapshots.

While a sharded run drains, workers emit periodic heartbeats and
per-drive progress records over a dedicated status queue (never the
result queue — results stay the single source of truth for outcomes).
The scheduler feeds those records, plus completed outcomes, into a
:class:`StatusBoard`, and asks it for a ``FleetStatus`` snapshot — a
plain schema-versioned dict with per-worker state (idle / running /
suspect / hung), queue depth, in-flight drive ages, completion counts,
a rolling drives/s rate, and fleet-wide frame-latency percentiles.

Every timestamp the board judges against is the *scheduler's* clock at
record arrival — a worker cannot vouch for its own liveness with a
self-reported time.  And everything here is wall-clock territory: the
status plane observes the execution, never the simulation, so none of
these values may reach a deterministic sink.  :data:`WALL_STATUS_KEYS`
declares the field names involved; the determinism-taint lint rule
treats them as laundering keys, the same way it treats the outcome and
rollup wall fields.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping

from repro.errors import FleetError
from repro.fleet.events import check_fleet_event_kind
from repro.fleet.outcome import OUTCOME_STATUSES, DriveOutcome
from repro.monitor.liveness import LivenessConfig, WorkerLiveness
from repro.quality.records import merge_summaries
from repro.telemetry.metrics import merge_snapshots

STATUS_SCHEMA = "repro.fleet/status"
STATUS_SCHEMA_VERSION = 1

#: Run phases a status snapshot can report.
STATUS_PHASES = ("running", "done")

#: Worker states the board reports.  ``idle``/``running`` come from the
#: worker's own progress records; ``suspect``/``hung`` are the liveness
#: machine's escalation when a *running* worker's heartbeats go quiet.
WORKER_STATES = ("idle", "running", "suspect", "hung")

#: Status-plane field names carrying wall-clock / scheduling values.
#: The determinism-taint rule launders these exactly like the outcome and
#: rollup ``WALL_*`` sets: a value under one of these names is declared
#: wall-valued and must never flow into a deterministic sink unstripped.
WALL_STATUS_KEYS = frozenset(
    {
        "elapsed_s",
        "heartbeat_age_s",
        "last_heartbeat_age_s",
        "drive_age_s",
        "drives_per_s",
        "hang_verdict",
        "beats",
        "wall_s",
    }
)

#: Default window for the rolling drives/s rate.
DEFAULT_RATE_WINDOW_S = 10.0


class WorkerView:
    """The board's picture of one worker slot, keyed by ``worker_id``."""

    def __init__(self, worker_id: int, liveness: LivenessConfig, now_s: float):
        self.worker_id = worker_id
        self.liveness = WorkerLiveness(liveness, now_s=now_s)
        self.busy = False
        self.drive_index: int | None = None
        self.drive_name: str | None = None
        self.drive_started_s: float | None = None
        self.beats = 0
        self.frames = 0
        self.drives_done = 0
        self.respawns = 0
        self.suspect_flagged = False

    def begin_drive(self, index: int, name: str, now_s: float) -> None:
        self.busy = True
        self.drive_index = index
        self.drive_name = name
        self.drive_started_s = now_s
        self.suspect_flagged = False
        self.liveness.reset(now_s)

    def end_drive(self, now_s: float) -> None:
        if self.busy:
            self.drives_done += 1
        self.busy = False
        self.drive_index = None
        self.drive_name = None
        self.drive_started_s = None
        self.suspect_flagged = False
        self.liveness.reset(now_s)

    def heartbeat_age_s(self, now_s: float) -> float:
        return self.liveness.age_s(now_s)

    def drive_age_s(self, now_s: float) -> float | None:
        if self.drive_started_s is None:
            return None
        return max(0.0, now_s - self.drive_started_s)

    def state(self, now_s: float) -> str:
        """Idle workers are never suspect: only silence *mid-drive* counts."""
        if not self.busy:
            return "idle"
        liveness = self.liveness.state(now_s)
        return "running" if liveness == "alive" else liveness

    def view(self, now_s: float) -> dict:
        drive = None
        if self.busy:
            drive = {
                "index": self.drive_index,
                "name": self.drive_name,
                "drive_age_s": _round6(self.drive_age_s(now_s)),
                "frames": self.frames,
            }
        return {
            "worker_id": self.worker_id,
            "state": self.state(now_s),
            "heartbeat_age_s": _round6(self.heartbeat_age_s(now_s)),
            "beats": self.beats,
            "drives_done": self.drives_done,
            "respawns": self.respawns,
            "drive": drive,
        }


def _round6(value: float | None) -> float | None:
    return None if value is None else round(value, 6)


class StatusBoard:
    """Fold heartbeats, progress records, and outcomes into snapshots."""

    def __init__(
        self,
        liveness: LivenessConfig | None = None,
        rate_window_s: float = DEFAULT_RATE_WINDOW_S,
        now_s: float = 0.0,
    ):
        if rate_window_s <= 0:
            raise FleetError(f"rate_window_s must be positive, got {rate_window_s}")
        self.liveness = liveness if liveness is not None else LivenessConfig()
        self.rate_window_s = rate_window_s
        self.started_s = now_s
        self.workers: dict[int, WorkerView] = {}
        self.by_status: dict[str, int] = {status: 0 for status in OUTCOME_STATUSES}
        self.frames_total = 0
        self.record_counts: dict[str, int] = {}
        self._completions: deque[float] = deque()
        self._latency_snapshot: list[dict] = []
        self._quality_summaries: list[dict] = []

    # Worker lifecycle (driven by the scheduler, not the side channel) -------

    def ensure_worker(self, worker_id: int, now_s: float, respawn: bool = False) -> WorkerView:
        """Register a worker slot (initial spawn) or reset it (respawn)."""
        view = self.workers.get(worker_id)
        if view is None:
            view = WorkerView(worker_id, self.liveness, now_s)
            self.workers[worker_id] = view
        if respawn:
            view.respawns += 1
            view.end_drive(now_s)
        return view

    def mark_dispatch(self, worker_id: int, index: int, name: str, now_s: float) -> None:
        """The scheduler handed ``index`` to ``worker_id`` — start its clock
        immediately, so a worker that wedges before its first beat still
        ages toward suspect/hung."""
        self.ensure_worker(worker_id, now_s).begin_drive(index, name, now_s)

    # Side-channel records ----------------------------------------------------

    def ingest(self, record: Mapping[str, Any], now_s: float) -> None:
        """Fold one heartbeat/progress record in (arrival-time semantics)."""
        kind = str(record.get("kind", ""))
        check_fleet_event_kind(kind)
        self.record_counts[kind] = self.record_counts.get(kind, 0) + 1
        worker_id = int(record["worker_id"])
        view = self.ensure_worker(worker_id, now_s)
        if kind == "fleet.worker.heartbeat":
            view.beats += 1
            view.liveness.observe(now_s)
            if record.get("busy"):
                index = record.get("index")
                if not view.busy and index is not None:
                    view.begin_drive(int(index), str(record.get("name", "?")), now_s)
                view.frames = int(record.get("frames", view.frames))
        elif kind == "fleet.drive.progress":
            view.liveness.observe(now_s)
            if record.get("phase") == "start":
                view.begin_drive(
                    int(record["index"]), str(record.get("name", "?")), now_s
                )
                view.frames = 0
            else:
                view.end_drive(now_s)
        else:
            raise FleetError(
                f"status board cannot ingest fleet event kind {kind!r}"
            )

    def take_new_suspects(self, now_s: float) -> list[WorkerView]:
        """Workers that newly crossed the suspect threshold (one-shot).

        Each busy worker is reported at most once per drive; the flag
        resets when a new drive starts on that slot.
        """
        fresh: list[WorkerView] = []
        for view in self.workers.values():
            if view.busy and not view.suspect_flagged and view.state(now_s) in (
                "suspect",
                "hung",
            ):
                view.suspect_flagged = True
                fresh.append(view)
        return fresh

    # Authoritative completions (from the result queue) ----------------------

    def record_outcome(self, outcome: "DriveOutcome | Mapping[str, Any]", now_s: float) -> None:
        data = outcome.to_dict() if isinstance(outcome, DriveOutcome) else dict(outcome)
        status = str(data.get("status", "failed"))
        self.by_status[status] = self.by_status.get(status, 0) + 1
        summary = data.get("summary") or {}
        self.frames_total += int(summary.get("frames", 0))
        self._completions.append(now_s)
        latency = data.get("latency_ms")
        if latency:
            self._latency_snapshot = merge_snapshots(
                self._latency_snapshot, [dict(latency)]
            )
        quality = data.get("quality")
        if quality:
            self._quality_summaries.append(dict(quality))

    def drives_per_s(self, now_s: float) -> float:
        """Completions over the trailing window (run-age-clamped)."""
        floor_s = now_s - self.rate_window_s
        while self._completions and self._completions[0] < floor_s:
            self._completions.popleft()
        span_s = min(self.rate_window_s, max(now_s - self.started_s, 1e-9))
        return len(self._completions) / span_s

    # Snapshots ---------------------------------------------------------------

    def snapshot(
        self,
        now_s: float,
        backlog: int = 0,
        capacity: int = 0,
        submitted: int = 0,
        rejected: int = 0,
        phase: str = "running",
    ) -> dict:
        """One ``FleetStatus`` dict: the whole live plane at ``now_s``."""
        if phase not in STATUS_PHASES:
            raise FleetError(f"unknown status phase {phase!r} (one of {STATUS_PHASES})")
        done = sum(self.by_status.values())
        states = {state: 0 for state in WORKER_STATES}
        worker_views = []
        for worker_id in sorted(self.workers):
            view = self.workers[worker_id].view(now_s)
            states[view["state"]] += 1
            worker_views.append(view)
        latency = self._latency_snapshot[0] if self._latency_snapshot else None
        return {
            "schema": STATUS_SCHEMA,
            "schema_version": STATUS_SCHEMA_VERSION,
            "phase": phase,
            "elapsed_s": _round6(max(0.0, now_s - self.started_s)),
            "workers": worker_views,
            "worker_states": states,
            "queue": {
                "backlog": backlog,
                "capacity": capacity,
                "submitted": submitted,
                "rejected": rejected,
            },
            "drives": {
                "done": done,
                "in_flight": sum(1 for v in self.workers.values() if v.busy),
                "by_status": dict(self.by_status),
            },
            "frames_total": self.frames_total,
            "drives_per_s": _round6(self.drives_per_s(now_s)),
            "latency_ms": latency,
            # Merged detection quality over drives completed so far; None
            # until the first scored drive lands (quality plane off, or
            # nothing finished yet).  Sim-derived, not wall territory —
            # but live snapshots as a whole never feed deterministic
            # sinks, so no strip set grows here.
            "quality": (
                merge_summaries(self._quality_summaries)
                if self._quality_summaries
                else None
            ),
            "records_by_kind": dict(sorted(self.record_counts.items())),
        }


def status_metrics_snapshot(snapshot: Mapping[str, Any]) -> list[dict]:
    """Express one status snapshot as metric series (for OpenMetrics).

    The exposition twin of :meth:`StatusBoard.snapshot`: gauges for the
    queue and worker states, counters for completions and frames, and
    the merged ``frame_wall_ms`` histogram — the shape
    :func:`repro.telemetry.openmetrics.render_openmetrics` consumes, so
    a fleet run scrapes like any production service.
    """
    validate_status(snapshot)
    queue = snapshot.get("queue", {})
    drives = snapshot.get("drives", {})
    series: list[dict] = [
        _gauge("fleet_queue_backlog", queue.get("backlog", 0)),
        _gauge("fleet_queue_capacity", queue.get("capacity", 0)),
        _gauge("fleet_drives_in_flight", drives.get("in_flight", 0)),
        _gauge("fleet_drives_per_second", snapshot.get("drives_per_s") or 0.0),
        _gauge("fleet_elapsed_seconds", snapshot.get("elapsed_s") or 0.0),
    ]
    for state, count in sorted((snapshot.get("worker_states") or {}).items()):
        series.append(_gauge("fleet_workers", count, state=state))
    for status, count in sorted((drives.get("by_status") or {}).items()):
        series.append(
            {
                "kind": "counter",
                "name": "fleet_drives_done_total",
                "labels": {"status": status},
                "value": float(count),
            }
        )
    series.append(
        {
            "kind": "counter",
            "name": "fleet_frames_total",
            "labels": {},
            "value": float(snapshot.get("frames_total", 0)),
        }
    )
    latency = snapshot.get("latency_ms")
    if latency:
        series.append(
            {
                "kind": "histogram",
                "name": "fleet_frame_wall_ms",
                "labels": dict(latency.get("labels", {})),
                "bounds": list(latency.get("bounds", [])),
                "bucket_counts": list(latency.get("bucket_counts", [])),
                "count": latency.get("count", 0),
                "sum": latency.get("sum", 0.0),
            }
        )
    quality = snapshot.get("quality")
    if quality:
        overall = quality.get("overall") or {}
        series.append(
            _gauge("fleet_quality_scored_drives", quality.get("scored_drives", 0))
        )
        if overall.get("recall") is not None:
            series.append(_gauge("fleet_quality_recall", overall["recall"]))
        if overall.get("precision") is not None:
            series.append(_gauge("fleet_quality_precision", overall["precision"]))
        for condition, row in sorted((quality.get("by_condition") or {}).items()):
            if row.get("recall") is not None:
                series.append(
                    _gauge("fleet_quality_recall", row["recall"], condition=condition)
                )
    return series


def _gauge(name: str, value: Any, **labels: str) -> dict:
    return {"kind": "gauge", "name": name, "labels": labels, "value": float(value)}


def validate_status(snapshot: Mapping[str, Any]) -> None:
    """Reject snapshots that do not carry the declared schema envelope."""
    if snapshot.get("schema") != STATUS_SCHEMA:
        raise FleetError(
            f"not a fleet status snapshot: schema={snapshot.get('schema')!r}"
        )
    if snapshot.get("schema_version") != STATUS_SCHEMA_VERSION:
        raise FleetError(
            f"unsupported fleet status schema_version "
            f"{snapshot.get('schema_version')!r} (want {STATUS_SCHEMA_VERSION})"
        )
    if snapshot.get("phase") not in STATUS_PHASES:
        raise FleetError(f"unknown status phase {snapshot.get('phase')!r}")


def render_status(snapshot: Mapping[str, Any]) -> str:
    """The ``fleet top`` text view of one status snapshot."""
    validate_status(snapshot)
    queue = snapshot.get("queue", {})
    drives = snapshot.get("drives", {})
    states = snapshot.get("worker_states", {})
    lines = [
        f"fleet status · phase={snapshot['phase']} · "
        f"elapsed={snapshot.get('elapsed_s', 0.0):.1f}s · "
        f"{snapshot.get('drives_per_s', 0.0):.2f} drives/s",
        f"  queue: {queue.get('backlog', 0)}/{queue.get('capacity', 0)} backlog · "
        f"{queue.get('submitted', 0)} submitted · {queue.get('rejected', 0)} rejected",
        "  drives: "
        + f"{drives.get('done', 0)} done ({_by_status_text(drives.get('by_status', {}))}) · "
        + f"{drives.get('in_flight', 0)} in flight · "
        + f"{snapshot.get('frames_total', 0)} frames",
        "  workers: "
        + " · ".join(f"{states.get(s, 0)} {s}" for s in WORKER_STATES),
    ]
    workers = snapshot.get("workers", [])
    if workers:
        lines.append(
            f"  {'id':>4} {'state':<8} {'beat age':>9} {'beats':>6} "
            f"{'done':>5} {'drive':<24} {'age':>7} {'frames':>7}"
        )
        for view in workers:
            drive = view.get("drive") or {}
            name = drive.get("name", "-")
            if drive and drive.get("index") is not None:
                name = f"#{drive['index']} {name}"
            age = drive.get("drive_age_s")
            lines.append(
                f"  {view.get('worker_id', '?'):>4} {view.get('state', '?'):<8} "
                f"{view.get('heartbeat_age_s', 0.0):>8.2f}s {view.get('beats', 0):>6} "
                f"{view.get('drives_done', 0):>5} {name:<24} "
                f"{(f'{age:.1f}s' if age is not None else '-'):>7} "
                f"{drive.get('frames', '-') if drive else '-':>7}"
            )
    latency = snapshot.get("latency_ms")
    if latency:
        percentiles = latency.get("percentiles", {})
        if percentiles:
            lines.append(
                "  frame latency: "
                + " · ".join(
                    f"{k}={v:.2f}ms" for k, v in sorted(percentiles.items())
                )
            )
    quality = snapshot.get("quality")
    if quality and quality.get("scored_drives"):
        overall = quality.get("overall") or {}
        by_condition = quality.get("by_condition") or {}
        parts = [
            f"recall={overall.get('recall', 0.0):.3f}",
            f"precision={overall.get('precision', 0.0):.3f}",
        ]
        parts.extend(
            f"{condition}={row.get('recall', 0.0):.3f}"
            for condition, row in sorted(by_condition.items())
        )
        lines.append(
            f"  quality ({quality['scored_drives']} scored): " + " · ".join(parts)
        )
    return "\n".join(lines)


def _by_status_text(by_status: Mapping[str, int]) -> str:
    parts = [f"{n} {status}" for status, n in sorted(by_status.items()) if n]
    return ", ".join(parts) if parts else "none yet"
