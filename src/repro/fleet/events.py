"""The declared vocabulary of fleet scheduler events.

Mirrors :data:`repro.monitor.events.MONITOR_EVENT_KINDS`: every typed
event the fleet scheduler emits (through
:meth:`~repro.fleet.scheduler.FleetScheduler.fleet_event`) must use a kind
from this set, so rollup readers, the fleet CLI report, and the acceptance
tests can rely on the names being exhaustive.  The
``fleet-event-vocabulary`` lint rule enforces the same contract
statically; :func:`check_fleet_event_kind` enforces it at runtime.
"""

from __future__ import annotations

from repro.errors import FleetError

#: Legal ``FleetScheduler.fleet_event`` kinds.
FLEET_EVENT_KINDS: frozenset[str] = frozenset(
    {
        # A fleet run started draining the admission queue.
        "fleet.run.start",
        # The run finished; every submitted drive has an outcome.
        "fleet.run.done",
        # One drive spec was admitted to the bounded submission queue.
        "fleet.submit",
        # Admission control rejected a spec (queue full / run finished).
        "fleet.reject",
        # A worker began executing one drive.
        "fleet.drive.start",
        # A drive finished and its outcome was recorded.
        "fleet.drive.done",
        # A worker process was spawned (initial shard or a respawn).
        "fleet.worker.spawn",
        # A worker process died while executing a drive; the drive was
        # recorded as a crashed outcome and the worker replaced.
        "fleet.worker.crash",
        # A drive overran the per-drive wall-clock deadline; its worker
        # was terminated and the drive recorded as a timeout outcome.
        "fleet.worker.timeout",
        # A fleet rollup artefact was written to disk.
        "fleet.rollup.write",
        # A worker's periodic liveness beat (side-channel; counted, not
        # appended to the scheduler event log).
        "fleet.worker.heartbeat",
        # A worker reported per-drive lifecycle progress (started /
        # finished executing a spec) over the side channel.
        "fleet.drive.progress",
        # A running worker's heartbeats went quiet past the suspect
        # threshold — early warning before the wall deadline fires.
        "fleet.worker.suspect",
        # The scheduler published a FleetStatus snapshot (live plane).
        "fleet.status.snapshot",
        # Per-drive span dumps were stitched into one fleet trace.
        "fleet.trace.stitch",
    }
)


def check_fleet_event_kind(kind: str) -> None:
    """Reject event kinds outside the declared vocabulary (runtime gate)."""
    if kind not in FLEET_EVENT_KINDS:
        raise FleetError(
            f"fleet event kind {kind!r} is not in the declared vocabulary; "
            "add it to repro.fleet.events.FLEET_EVENT_KINDS first"
        )
