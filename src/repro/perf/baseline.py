"""The baseline store: schema-versioned BENCH snapshots + the compare gate.

A snapshot is one JSON document (``BENCH_<label>.json``) holding machine
metadata, the runner policy, per-benchmark robust stats (with raw samples,
so future comparisons can re-derive anything), and the span rollups of the
macro drive.  ``compare`` judges a current run against a stored baseline:
per benchmark, a slowdown is a *regression* only when it is statistically
significant under :func:`repro.perf.stats.significant_slowdown` and
exceeds the configured relative threshold.  The reporters mirror the
``repro lint`` pattern: a one-line-per-finding text report and a stable
JSON document.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.perf.runner import BenchResult, RunnerConfig
from repro.perf.stats import relative_change, significant_slowdown

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 1

#: Compare verdicts, in severity order.
STATUSES = ("regressed", "missing", "new", "improved", "unchanged")


def machine_meta() -> dict[str, Any]:
    """The environment a snapshot was measured on."""
    import numpy as np

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
    }


def build_snapshot(
    results: list[BenchResult],
    label: str,
    runner: RunnerConfig | None = None,
    span_rollups: dict | None = None,
    metrics: list[dict] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict:
    """Assemble the schema-versioned snapshot document."""
    doc: dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_meta(),
        "benchmarks": {r.name: r.to_dict() for r in results},
    }
    if runner is not None:
        doc["runner"] = {
            "warmup": runner.warmup,
            "min_repeats": runner.min_repeats,
            "max_repeats": runner.max_repeats,
            "max_time_s": runner.max_time_s,
            "outlier_k": runner.outlier_k,
            "seed": runner.seed,
            "smoke": runner.smoke,
        }
    if span_rollups is not None:
        doc["span_rollups"] = span_rollups
    if metrics is not None:
        doc["metrics"] = metrics
    if extra:
        doc.update(extra)
    return doc


def write_snapshot(path: str, doc: dict) -> None:
    """Write one snapshot document (stable key order, human-diffable)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: str) -> dict:
    """Load and schema-check a snapshot written by :func:`write_snapshot`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_NAME:
        raise ConfigurationError(
            f"baseline {path!r} is not a {SCHEMA_NAME} snapshot"
        )
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"baseline {path!r} has schema_version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if not isinstance(doc.get("benchmarks"), dict):
        raise ConfigurationError(f"baseline {path!r} has no benchmarks table")
    return doc


def results_from_snapshot(doc: dict) -> dict[str, BenchResult]:
    """Rehydrate the per-benchmark results of a loaded snapshot."""
    return {
        name: BenchResult.from_dict(entry)
        for name, entry in doc["benchmarks"].items()
    }


@dataclass
class CompareEntry:
    """One benchmark's verdict against the baseline."""

    name: str
    status: str
    rel_change: float = 0.0
    baseline_median_ms: float | None = None
    current_median_ms: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "rel_change": self.rel_change,
            "baseline_median_ms": self.baseline_median_ms,
            "current_median_ms": self.current_median_ms,
        }

    def render(self) -> str:
        def fmt(value: float | None) -> str:
            return f"{value:.3f}" if value is not None else "-"

        return (
            f"{self.name}: {self.status} "
            f"({fmt(self.baseline_median_ms)} -> {fmt(self.current_median_ms)} ms, "
            f"{self.rel_change:+.1%})"
        )


@dataclass
class CompareReport:
    """The verdict of one current run against one baseline snapshot."""

    baseline_label: str
    current_label: str
    threshold_rel: float
    entries: list[CompareEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[CompareEntry]:
        return [e for e in self.entries if e.status == "regressed"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def counts(self) -> dict[str, int]:
        table = {status: 0 for status in STATUSES}
        for entry in self.entries:
            table[entry.status] += 1
        return table

    def render_text(self) -> str:
        lines = [
            f"bench compare: {self.current_label!r} vs baseline "
            f"{self.baseline_label!r} (threshold {self.threshold_rel:.0%})"
        ]
        order = {status: i for i, status in enumerate(STATUSES)}
        for entry in sorted(
            self.entries, key=lambda e: (order[e.status], e.name)
        ):
            if entry.status == "unchanged":
                continue
            lines.append(f"  {entry.render()}")
        counts = self.counts()
        lines.append(
            "bench compare: "
            + ", ".join(f"{counts[s]} {s}" for s in STATUSES)
            + f" across {len(self.entries)} benchmarks"
        )
        if self.has_regressions:
            lines.append("bench compare: FAILED (significant slowdowns found)")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "tool": "repro-bench-compare",
                "baseline": self.baseline_label,
                "current": self.current_label,
                "threshold_rel": self.threshold_rel,
                "counts": self.counts(),
                "has_regressions": self.has_regressions,
                "entries": [e.to_dict() for e in self.entries],
            },
            indent=2,
            sort_keys=True,
        )


def compare(
    baseline_doc: dict,
    current_results: list[BenchResult],
    threshold_rel: float = 0.10,
    current_label: str = "current",
) -> CompareReport:
    """Judge ``current_results`` against a loaded baseline snapshot.

    A benchmark present in both is *regressed* when the slowdown is both
    beyond ``threshold_rel`` and outside the joint noise floor; the
    symmetric condition marks *improved*; anything else is *unchanged*.
    Benchmarks only in the baseline are *missing* (a deleted benchmark is
    worth noticing, not worth failing); only in the current run, *new*.
    """
    if threshold_rel < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold_rel}")
    baseline = results_from_snapshot(baseline_doc)
    report = CompareReport(
        baseline_label=str(baseline_doc.get("label", "?")),
        current_label=current_label,
        threshold_rel=threshold_rel,
    )
    current_by_name = {r.name: r for r in current_results}
    for name in sorted(set(baseline) | set(current_by_name)):
        base = baseline.get(name)
        cur = current_by_name.get(name)
        if base is None:
            assert cur is not None
            report.entries.append(
                CompareEntry(
                    name=name,
                    status="new",
                    current_median_ms=cur.stats.median,
                )
            )
            continue
        if cur is None:
            report.entries.append(
                CompareEntry(
                    name=name,
                    status="missing",
                    baseline_median_ms=base.stats.median,
                )
            )
            continue
        rel = relative_change(base.stats, cur.stats)
        if significant_slowdown(base.stats, cur.stats, threshold_rel):
            status = "regressed"
        elif significant_slowdown(cur.stats, base.stats, threshold_rel):
            status = "improved"
        else:
            status = "unchanged"
        report.entries.append(
            CompareEntry(
                name=name,
                status=status,
                rel_change=rel,
                baseline_median_ms=base.stats.median,
                current_median_ms=cur.stats.median,
            )
        )
    return report
