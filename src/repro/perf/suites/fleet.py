"""Fleet benchmarks: drives/sec scaling against worker count.

One seeded sweep, three executors — inline (the sequential reference),
two workers, four workers.  All three time the *same* spec list with
monitoring and latency histograms off, so the measurement is scheduler
plus drive cost, and the group read side by side answers the subsystem's
headline question: what does sharding buy over inline execution?
"""

from __future__ import annotations

from repro.fleet.scheduler import FleetConfig, FleetScheduler
from repro.fleet.specs import sweep_specs
from repro.perf.registry import BenchContext, bench


def _fleet_workload(ctx: BenchContext, workers: int):
    count = 4 if ctx.smoke else 12
    duration_s = 0.5 if ctx.smoke else 1.0
    specs = sweep_specs(count, fleet_seed=13, duration_s=duration_s)
    ctx.digest([spec.seed for spec in specs])
    ctx.note("drives", count)
    ctx.note("duration_s", duration_s)
    ctx.note("workers", workers)
    config = FleetConfig(workers=workers, monitored=False, record_latency=False)

    def run():
        scheduler = FleetScheduler(config)
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        return sum(1 for o in outcomes if o.ok)

    return run


@bench(
    "fleet_inline_ms",
    group="fleet",
    kind="macro",
    summary="seeded sweep, sequential in-process reference executor",
)
def fleet_inline(ctx: BenchContext):
    return _fleet_workload(ctx, workers=0)


@bench(
    "fleet_workers2_ms",
    group="fleet",
    kind="macro",
    summary="same sweep sharded across 2 worker processes",
)
def fleet_workers2(ctx: BenchContext):
    return _fleet_workload(ctx, workers=2)


@bench(
    "fleet_workers4_ms",
    group="fleet",
    kind="macro",
    summary="same sweep sharded across 4 worker processes",
)
def fleet_workers4(ctx: BenchContext):
    return _fleet_workload(ctx, workers=4)


def _streaming_twin(ctx: BenchContext, streaming: bool):
    """One of the live-plane overhead twins: identical but for the flag.

    The pair pins the acceptance bound of the observability plane: the
    ``on`` twin runs heartbeats, status folding, and snapshot publishing;
    the ``off`` twin is the same sharded sweep with the plane disabled.
    Their medians should agree within the MAD noise floor (FLEET.md).
    """
    count = 4 if ctx.smoke else 12
    duration_s = 0.5 if ctx.smoke else 1.0
    specs = sweep_specs(count, fleet_seed=13, duration_s=duration_s)
    ctx.digest([spec.seed for spec in specs])
    ctx.note("drives", count)
    ctx.note("duration_s", duration_s)
    ctx.note("streaming", streaming)
    config = FleetConfig(
        workers=2,
        monitored=False,
        record_latency=False,
        streaming=streaming,
        status_interval_s=0.25,
    )

    def run():
        scheduler = FleetScheduler(config)
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        return sum(1 for o in outcomes if o.ok)

    return run


@bench(
    "fleet_streaming_on_ms",
    group="fleet",
    kind="macro",
    summary="2-worker sweep with the live plane on (heartbeats + snapshots)",
)
def fleet_streaming_on(ctx: BenchContext):
    return _streaming_twin(ctx, streaming=True)


@bench(
    "fleet_streaming_off_ms",
    group="fleet",
    kind="macro",
    summary="identical 2-worker sweep with the live plane off (overhead twin)",
)
def fleet_streaming_off(ctx: BenchContext):
    return _streaming_twin(ctx, streaming=False)
