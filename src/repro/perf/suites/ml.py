"""ML hot paths: the sliding-DBN grid scan and the linear-SVM batch.

The DBN here is the paper's 81-20-8-4 taillight classifier, trained just
enough to exercise the real prediction path; the workload replicates the
dark pipeline's stride-2 9x9 grid scan (window view, occupancy filter,
batched forward passes) without dragging the full detector's training
corpus into a benchmark setup.
"""

from __future__ import annotations

import numpy as np

from repro.ml.dbn import DbnConfig, DeepBeliefNetwork
from repro.ml.logistic import SoftmaxConfig
from repro.ml.rbm import RbmConfig
from repro.perf.registry import BenchContext, bench
from repro.pipelines.dark import DBN_STRIDE, DBN_WINDOW


def _tiny_dbn(ctx: BenchContext) -> DeepBeliefNetwork:
    """A cheaply trained DBN with the paper architecture."""
    config = DbnConfig(
        rbm=RbmConfig(epochs=1, seed=7),
        head=SoftmaxConfig(epochs=5),
        finetune_epochs=0,
        seed=7,
    )
    dbn = DeepBeliefNetwork(config)
    train = (ctx.rng.random((64, DBN_WINDOW * DBN_WINDOW)) > 0.5).astype(np.float64)
    labels = ctx.rng.integers(0, config.n_classes, size=64)
    ctx.digest(train, labels)
    dbn.fit(train, labels)
    return dbn


@bench("dbn_grid_scan_ms", group="ml", kind="micro", summary="stride-2 9x9 DBN grid scan")
def dbn_grid_scan(ctx: BenchContext):
    dbn = _tiny_dbn(ctx)
    height, width = (45, 80) if ctx.smoke else (60, 110)
    mask = (ctx.rng.random((height, width)) > 0.85).astype(np.float64)
    ctx.digest(mask)

    def run():
        view = np.lib.stride_tricks.sliding_window_view(mask, (DBN_WINDOW, DBN_WINDOW))
        view = view[::DBN_STRIDE, ::DBN_STRIDE]
        ny, nx = view.shape[:2]
        flat = view.reshape(ny * nx, DBN_WINDOW * DBN_WINDOW)
        grid = np.zeros(ny * nx, dtype=np.int64)
        occupied = np.flatnonzero(flat.any(axis=1))
        if occupied.size:
            grid[occupied] = dbn.predict(flat[occupied])
        return grid.reshape(ny, nx)

    return run


@bench("dbn_forward_ms", group="ml", kind="micro", summary="batched DBN forward pass")
def dbn_forward(ctx: BenchContext):
    dbn = _tiny_dbn(ctx)
    n = 256 if ctx.smoke else 1024
    batch = (ctx.rng.random((n, DBN_WINDOW * DBN_WINDOW)) > 0.5).astype(np.float64)
    ctx.digest(batch)

    def run():
        return dbn.predict_proba(batch)

    return run
