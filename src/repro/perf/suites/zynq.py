"""SoC-model hot paths: the DMA frame step and a partial reconfiguration.

These time the *simulation machinery* (event queue, bus model, PR
controller), not the modelled hardware: the simulator clock is free, so
the wall cost here is pure Python overhead per simulated frame/reconfig —
exactly what bounds how long a simulated drive takes to run.
"""

from __future__ import annotations

from repro.core.system import AdaptiveDetectionSystem
from repro.perf.registry import BenchContext, bench
from repro.zynq.soc import ZynqSoC


@bench("dma_frame_step_ms", group="zynq", summary="one frame through both DMA paths")
def dma_frame_step(ctx: BenchContext):
    soc = ZynqSoC()
    frames = 4 if ctx.smoke else 16

    def run():
        for _ in range(frames):
            soc.submit_frame("vehicle")
            soc.submit_frame("pedestrian")
            soc.sim.run()
        return soc.stats()

    return run


@bench("pr_reconfigure_ms", group="zynq", summary="one dark<->day_dusk reconfiguration")
def pr_reconfigure(ctx: BenchContext):
    soc = ZynqSoC()
    targets = ["dark", "day_dusk"]
    state = {"i": 0}

    def run():
        configuration = targets[state["i"] % 2]
        state["i"] += 1
        soc.reconfigure_vehicle(configuration)
        soc.sim.run()
        return soc.pr.reports[-1].ok

    return run


@bench(
    "drive_simulation_step_ms",
    group="zynq",
    summary="per-frame cost of the full system loop",
)
def drive_simulation_step(ctx: BenchContext):
    from repro.adaptive.sensor import sunset_trace

    duration_s = 0.5 if ctx.smoke else 1.0
    trace = sunset_trace(duration_s=duration_s)

    def run():
        system = AdaptiveDetectionSystem()
        return system.run_drive(trace, duration_s=duration_s).n_frames

    return run
