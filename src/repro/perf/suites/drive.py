"""The macro benchmark: an end-to-end adaptive drive.

Two artefacts come out of one setup: the timed workload (an unobserved
``run_drive``, so the measurement matches production cost), and a span
rollup of one *observed* drive of the same scenario, attached to the
result notes — the per-stage breakdown every BENCH snapshot carries for
hot-path attribution (the Wasala/Kryjak-style per-stage table).
"""

from __future__ import annotations

from repro.adaptive.sensor import sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.perf.profile import profile_tracer
from repro.perf.registry import BenchContext, bench
from repro.telemetry import Telemetry


@bench(
    "run_drive_macro_ms",
    group="drive",
    kind="macro",
    summary="end-to-end adaptive drive (sunset trace)",
)
def run_drive_macro(ctx: BenchContext):
    duration_s = 2.0 if ctx.smoke else 5.0
    trace = sunset_trace(duration_s=duration_s)
    import numpy as np

    ctx.digest(np.asarray([lux for _, lux in trace.points]))
    ctx.note("duration_s", duration_s)

    # One observed pass for the snapshot's span rollups; the profiler is
    # post-hoc, so this cannot perturb the timed (unobserved) runs below.
    telemetry = Telemetry.recording()
    observed = AdaptiveDetectionSystem(telemetry=telemetry)
    observed.run_drive(trace, duration_s=duration_s)
    ctx.note("span_rollups", profile_tracer(telemetry.tracer).to_dict())

    def run():
        system = AdaptiveDetectionSystem()
        return system.run_drive(trace, duration_s=duration_s).n_frames

    return run
