"""Imaging hot paths: resize, morphology, integral images.

The dark pipeline spends its pre-DBN time here (threshold -> decimate ->
close), and every pyramid level of the day/dusk path goes through the
bilinear resize; these are the kernels a future vectorisation PR targets.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.integral import integral_image
from repro.imaging.morphology import closing, square_element
from repro.imaging.resize import resize_bilinear
from repro.perf.registry import BenchContext, bench


@bench("resize_bilinear_ms", group="imaging", summary="bilinear frame resize")
def resize_bilinear_bench(ctx: BenchContext):
    height, width = (90, 160) if ctx.smoke else (180, 320)
    frame = ctx.rng.random((height, width))
    ctx.digest(frame)
    out_h, out_w = int(height * 0.8), int(width * 0.8)

    def run():
        return resize_bilinear(frame, out_h, out_w)

    return run


@bench("morphology_closing_ms", group="imaging", summary="binary closing, 3x3 square")
def morphology_closing(ctx: BenchContext):
    height, width = (60, 110) if ctx.smoke else (120, 220)
    mask = ctx.rng.random((height, width)) > 0.7
    ctx.digest(mask)
    element = square_element(3)

    def run():
        return closing(mask, element)

    return run


@bench("integral_image_ms", group="imaging", summary="summed-area table build")
def integral_image_bench(ctx: BenchContext):
    height, width = (90, 160) if ctx.smoke else (180, 320)
    frame = ctx.rng.random((height, width))
    ctx.digest(frame)

    def run():
        return integral_image(frame)

    return run
