"""Sliding-window scan hot paths: batched vs per-window reference.

Each learned scan is timed twice — once through the per-window reference
branch (``batched=False``) and once through the gathered-matrix hot path —
so one snapshot carries the before/after of the batching work and
``repro bench --compare`` can hold the speedup: the ``*_batched_ms`` bench
must stay a small fraction of its ``*_reference_ms`` twin.  The
equivalence suite (pytest -m equivalence) separately proves the two
branches return byte-identical results.
"""

from __future__ import annotations

import numpy as np

from repro.features.hog import HogConfig, HogDescriptor
from repro.ml.dbn import DbnConfig, DeepBeliefNetwork
from repro.ml.linear import LinearModel
from repro.ml.logistic import SoftmaxConfig
from repro.ml.rbm import RbmConfig
from repro.perf.registry import BenchContext, bench
from repro.pipelines.dark import DBN_WINDOW, DarkConfig, DarkVehicleDetector


def _svm_scan_setup(ctx: BenchContext):
    """Dense blocks + model for the scoring stage both branches share.

    The dense HOG extraction is identical work on either branch, so it
    stays in setup; the timed region is exactly what the batching changed —
    score every window of the frame against the SVM.
    """
    descriptor = HogDescriptor(HogConfig(window=(64, 64)))
    plane = ctx.rng.random((96, 160) if ctx.smoke else (128, 256))
    weights = ctx.rng.normal(size=descriptor.feature_length)
    ctx.digest(plane, weights)
    blocks, layout = descriptor.extract_dense(plane)
    model = LinearModel(weights=weights, bias=0.1)
    ctx.note("n_windows", layout.window_index_grid(1).shape[0])
    return blocks, layout, model


@bench(
    "svm_scan_reference_ms",
    group="scan",
    summary="score every frame window, per-window reference branch",
)
def svm_scan_reference(ctx: BenchContext):
    blocks, layout, model = _svm_scan_setup(ctx)

    def run():
        return [
            float(model.decision_values(layout.window_feature(blocks, r, c)))
            for r, c in layout.window_positions(1)
        ]

    return run


@bench(
    "svm_scan_batched_ms",
    group="scan",
    summary="score every frame window, gathered-matrix hot path",
)
def svm_scan_batched(ctx: BenchContext):
    blocks, layout, model = _svm_scan_setup(ctx)
    n = layout.window_index_grid(1).shape[0]
    features = np.empty((n, layout.config.feature_length))
    scores = np.empty(n)

    def run():
        model.decision_batch(
            layout.window_feature_matrix(blocks, cell_stride=1, out=features), out=scores
        )
        return scores

    return run


def _dark_detector(ctx: BenchContext, batched: bool) -> DarkVehicleDetector:
    config = DbnConfig(
        rbm=RbmConfig(epochs=1, seed=7),
        head=SoftmaxConfig(epochs=5),
        finetune_epochs=0,
        seed=7,
    )
    dbn = DeepBeliefNetwork(config)
    train = (ctx.rng.random((64, DBN_WINDOW * DBN_WINDOW)) > 0.5).astype(np.float64)
    labels = ctx.rng.integers(0, config.n_classes, size=64)
    ctx.digest(train, labels)
    dbn.fit(train, labels)
    return DarkVehicleDetector(DarkConfig(batched=batched), dbn=dbn)


def _dark_mask(ctx: BenchContext) -> np.ndarray:
    height, width = (45, 80) if ctx.smoke else (60, 110)
    mask = (ctx.rng.random((height, width)) > 0.85).astype(np.float64)
    ctx.digest(mask)
    return mask


@bench(
    "dbn_grid_reference_ms",
    group="scan",
    summary="dark DBN grid, one-window-at-a-time reference branch",
)
def dbn_grid_reference(ctx: BenchContext):
    detector = _dark_detector(ctx, batched=False)
    mask = _dark_mask(ctx)

    def run():
        return detector.dbn_grid(mask)

    return run


@bench(
    "dbn_grid_batched_ms",
    group="scan",
    summary="dark DBN grid, chunked-batch hot path",
)
def dbn_grid_batched(ctx: BenchContext):
    detector = _dark_detector(ctx, batched=True)
    mask = _dark_mask(ctx)

    def run():
        return detector.dbn_grid(mask)

    return run


@bench(
    "hog_window_gather_ms",
    group="scan",
    summary="dense-block window gather into one feature matrix",
)
def hog_window_gather(ctx: BenchContext):
    descriptor = HogDescriptor(HogConfig(window=(64, 64)))
    frame = ctx.rng.random((96, 160) if ctx.smoke else (128, 256))
    ctx.digest(frame)
    blocks, layout = descriptor.extract_dense(frame)
    n = layout.window_index_grid(1).shape[0]
    out = np.empty((n, descriptor.feature_length))

    def run():
        return layout.window_feature_matrix(blocks, cell_stride=1, out=out)

    return run


@bench(
    "hog_extract_batch_ms",
    group="scan",
    summary="batched HOG descriptors for a stack of crops",
)
def hog_extract_batch(ctx: BenchContext):
    descriptor = HogDescriptor(HogConfig(window=(64, 64)))
    n = 8 if ctx.smoke else 32
    stack = ctx.rng.random((n, 64, 64))
    ctx.digest(stack)

    def run():
        return descriptor.extract_batch(stack)

    return run
