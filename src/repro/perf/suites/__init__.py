"""Benchmark suites; importing this package populates the bench registry.

Every module here defines ``@bench``-registered setup functions over one
layer of the reproduction.  The ``bench-registry`` lint rule holds these
modules to the suite contract: all public functions registered, names
unit-suffixed, and no wall-clock reads (the runner owns timing).
"""

from repro.perf.suites import (  # noqa: F401
    drive,
    features,
    fleet,
    imaging,
    ml,
    scan,
    zynq,
)
