"""Feature-extraction hot paths: gradients, HOG, sliding windows.

These are the software model of the paper's HOG+SVM datapath — the blocks
a "make the hot path faster" PR will touch first, so each stage is timed
separately (gradient field, cell histograms, one-window descriptor, dense
descriptor, multi-scale sliding).
"""

from __future__ import annotations

import numpy as np

from repro.features.gradients import gradient_field
from repro.features.hog import HogConfig, HogDescriptor, cell_histograms
from repro.features.windows import slide_pyramid
from repro.perf.registry import BenchContext, bench


def _frame(ctx: BenchContext, height: int, width: int) -> np.ndarray:
    frame = ctx.rng.random((height, width))
    ctx.digest(frame)
    return frame


@bench("hog_gradient_field_ms", group="features", summary="Sobel-style gradient field")
def hog_gradient_field(ctx: BenchContext):
    frame = _frame(ctx, *(90, 160) if ctx.smoke else (180, 320))

    def run():
        return gradient_field(frame)

    return run


@bench("hog_cell_histograms_ms", group="features", summary="orientation-binned cell grid")
def hog_cell_histograms(ctx: BenchContext):
    config = HogConfig(window=(64, 64))
    window = _frame(ctx, *config.window)

    def run():
        return cell_histograms(window, config)

    return run


@bench("hog_descriptor_ms", group="features", summary="one-window HOG descriptor")
def hog_descriptor(ctx: BenchContext):
    config = HogConfig(window=(64, 64))
    window = _frame(ctx, *config.window)
    descriptor = HogDescriptor(config)

    def run():
        return descriptor.extract(window)

    return run


@bench("hog_dense_ms", group="features", summary="dense HOG over a full frame")
def hog_dense(ctx: BenchContext):
    frame = _frame(ctx, *(96, 160) if ctx.smoke else (128, 256))
    descriptor = HogDescriptor(HogConfig(window=(64, 64)))

    def run():
        return descriptor.extract_dense(frame)

    return run


@bench("sliding_windows_ms", group="features", summary="multi-scale sliding windows")
def sliding_windows(ctx: BenchContext):
    frame = _frame(ctx, *(96, 160) if ctx.smoke else (180, 320))
    levels = 2 if ctx.smoke else 3

    def run():
        count = 0
        for _ in slide_pyramid(frame, window=(64, 64), stride=(16, 16), max_levels=levels):
            count += 1
        return count

    return run
