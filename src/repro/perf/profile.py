"""Span profiler: post-hoc hot-path attribution over a recorded trace.

The profiler consumes *finished* spans — from a live :class:`Tracer`, a
reloaded :class:`TelemetryDump`, or any plain span list — and never touches
the objects it reads, so profiling a drive after the fact cannot perturb
the drive's report (the same non-perturbation invariant the telemetry
layer guarantees during recording).

Three products, per clock (simulator and host wall):

* **rollups** — per span *name*: call count, total time, and *self* time
  (total minus the time spent in child spans), the number every hot-path
  table should be ranked by;
* **frame percentiles** — p50/p90/p99 wall milliseconds of a chosen
  per-iteration span (``drive.frame`` by default);
* **collapsed stacks** — ``root;child;leaf <weight>`` lines, the format
  speedscope and Brendan Gregg's ``flamegraph.pl`` both ingest.

Ring-buffered tracers drop their oldest finished spans; a dropped parent
simply promotes its surviving children to roots.  The profile records how
many spans were known to be dropped so reports can flag partial data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.perf.stats import percentile
from repro.telemetry.spans import Span, Tracer

#: Percentiles reported for per-frame latency tables.
FRAME_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class SpanRollup:
    """Aggregate timings for one span name."""

    name: str
    count: int = 0
    total_wall_ms: float = 0.0
    self_wall_ms: float = 0.0
    total_sim_ms: float = 0.0
    self_sim_ms: float = 0.0
    max_wall_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_wall_ms": self.total_wall_ms,
            "self_wall_ms": self.self_wall_ms,
            "total_sim_ms": self.total_sim_ms,
            "self_sim_ms": self.self_sim_ms,
            "max_wall_ms": self.max_wall_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRollup":
        return cls(
            name=data["name"],
            count=int(data["count"]),
            total_wall_ms=float(data["total_wall_ms"]),
            self_wall_ms=float(data["self_wall_ms"]),
            total_sim_ms=float(data["total_sim_ms"]),
            self_sim_ms=float(data["self_sim_ms"]),
            max_wall_ms=float(data.get("max_wall_ms", 0.0)),
        )


@dataclass
class SpanProfile:
    """The rolled-up view of one recorded trace."""

    rollups: dict[str, SpanRollup] = field(default_factory=dict)
    n_spans: int = 0
    n_roots: int = 0
    spans_dropped: int = 0
    #: Wall-ms samples per span name (drives the percentile tables).
    _wall_ms_by_name: dict[str, list[float]] = field(default_factory=dict, repr=False)
    #: ``name path -> total weight (wall µs)`` for the collapsed-stack export.
    _stacks: dict[tuple[str, ...], float] = field(default_factory=dict, repr=False)

    def hot_spans(self, n: int = 10) -> list[SpanRollup]:
        """Top ``n`` span names ranked by self wall time."""
        ranked = sorted(
            self.rollups.values(), key=lambda r: (-r.self_wall_ms, r.name)
        )
        return ranked[: max(0, n)]

    def frame_percentiles(
        self, name: str = "drive.frame", qs: Sequence[float] = FRAME_PERCENTILES
    ) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` wall-ms for ``name``.

        Empty dict when the span name never occurred.
        """
        samples = self._wall_ms_by_name.get(name)
        if not samples:
            return {}
        return {f"p{q:g}": percentile(samples, q) for q in qs}

    def collapsed_stacks(self) -> str:
        """Collapsed-stack text: ``a;b;c <weight>`` per line.

        Weights are integer self-time microseconds on the wall clock, the
        convention speedscope and FlameGraph expect; zero-weight stacks
        are kept (weight 1) so instantaneous events remain visible.
        """
        lines = []
        for path in sorted(self._stacks):
            weight = max(1, int(round(self._stacks[path])))
            lines.append(";".join(path) + f" {weight}")
        return "\n".join(lines)

    def render_top(self, n: int = 10) -> str:
        """The hot-span table ``python -m repro telemetry --top N`` prints."""
        lines = [
            f"hot spans (self wall time, top {n} of {len(self.rollups)} names; "
            f"{self.n_spans} spans, {self.spans_dropped} dropped)"
        ]
        lines.append(
            f"  {'span':<28} {'count':>6} {'self ms':>10} {'total ms':>10} "
            f"{'self %':>7} {'sim self ms':>12}"
        )
        total_self = sum(r.self_wall_ms for r in self.rollups.values())
        for rollup in self.hot_spans(n):
            share = 100.0 * rollup.self_wall_ms / total_self if total_self > 0 else 0.0
            lines.append(
                f"  {rollup.name:<28} {rollup.count:>6} {rollup.self_wall_ms:>10.3f} "
                f"{rollup.total_wall_ms:>10.3f} {share:>6.1f}% {rollup.self_sim_ms:>12.3f}"
            )
        percentiles = self.frame_percentiles()
        if percentiles:
            rendered = "  ".join(f"{k}={v:.3f}" for k, v in percentiles.items())
            lines.append(f"  drive.frame wall ms: {rendered}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Plain-data form embedded in BENCH snapshots."""
        return {
            "n_spans": self.n_spans,
            "n_roots": self.n_roots,
            "spans_dropped": self.spans_dropped,
            "rollups": [r.to_dict() for r in self.hot_spans(len(self.rollups))],
            "frame_wall_ms": self.frame_percentiles(),
        }


def profile_spans(spans: Iterable[Span], spans_dropped: int = 0) -> SpanProfile:
    """Roll up a span list into a :class:`SpanProfile`.

    Unfinished spans are skipped (they have no duration yet).  A span
    whose ``parent_id`` does not resolve — the parent was dropped by a
    ring buffer, or the dump is partial — is treated as a root; its time
    is still fully attributed to its own name.
    """
    finished = [s for s in spans if s.finished]
    by_id = {s.span_id: s for s in finished}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in finished:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    profile = SpanProfile(n_spans=len(finished), n_roots=len(roots), spans_dropped=spans_dropped)

    def rollup(name: str) -> SpanRollup:
        entry = profile.rollups.get(name)
        if entry is None:
            entry = SpanRollup(name=name)
            profile.rollups[name] = entry
        return entry

    # Iterative stack walk (drives can record hundreds of thousands of
    # spans; recursion depth must not scale with trace size).
    for root in roots:
        stack: list[tuple[Span, tuple[str, ...]]] = [(root, (root.name,))]
        while stack:
            span, path = stack.pop()
            kids = children.get(span.span_id, ())
            wall_ms = span.wall_duration_s * 1e3
            sim_ms = span.duration_s * 1e3
            child_wall_ms = sum(k.wall_duration_s for k in kids) * 1e3
            child_sim_ms = sum(k.duration_s for k in kids) * 1e3
            self_wall_ms = max(0.0, wall_ms - child_wall_ms)
            self_sim_ms = max(0.0, sim_ms - child_sim_ms)
            entry = rollup(span.name)
            entry.count += 1
            entry.total_wall_ms += wall_ms
            entry.self_wall_ms += self_wall_ms
            entry.total_sim_ms += sim_ms
            entry.self_sim_ms += self_sim_ms
            entry.max_wall_ms = max(entry.max_wall_ms, wall_ms)
            profile._wall_ms_by_name.setdefault(span.name, []).append(wall_ms)
            profile._stacks[path] = profile._stacks.get(path, 0.0) + self_wall_ms * 1e3
            for kid in kids:
                stack.append((kid, path + (kid.name,)))
    return profile


def profile_tracer(tracer: Tracer) -> SpanProfile:
    """Profile a live recording tracer (ring-buffer drops are surfaced)."""
    return profile_spans(tracer.spans, spans_dropped=getattr(tracer, "spans_dropped", 0))


def profile_dump(dump) -> SpanProfile:
    """Profile a reloaded :class:`repro.telemetry.TelemetryDump`."""
    dropped = 0
    meta_dropped = dump.meta.get("spans_dropped") if isinstance(dump.meta, dict) else None
    if isinstance(meta_dropped, (int, float)):
        dropped = int(meta_dropped)
    return profile_spans(dump.spans, spans_dropped=dropped)
