"""The statistical bench runner: warmup, adaptive repeats, robust stats.

The runner owns all timing (suites only build workloads): each benchmark
gets ``warmup`` untimed calls, then timed repeats until both the minimum
repeat count and the time budget are satisfied, then a modified-z-score
outlier filter and median/MAD/CV summary over what survives.  Workload
construction is seeded, so two runs with the same seed time *identical*
work — the property the regression gate leans on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.perf.registry import BenchSpec, all_benches, make_context
from repro.perf.stats import SampleStats, summarize


@dataclass(frozen=True)
class RunnerConfig:
    """Measurement policy shared by every benchmark in one run.

    Attributes:
        warmup: Untimed calls before measurement (JIT-free Python still
            benefits: allocator warmup, cache priming, lazy imports).
        min_repeats: Timed repeats every benchmark gets at least.
        max_repeats: Hard ceiling on timed repeats.
        max_time_s: Per-benchmark time budget; once ``min_repeats`` are in
            and the budget is spent, measurement stops.
        outlier_k: Modified-z-score cutoff for the outlier filter.
        seed: Root seed every workload RNG is derived from.
        smoke: Propagated to setups so they can shrink workloads.
    """

    warmup: int = 2
    min_repeats: int = 5
    max_repeats: int = 30
    max_time_s: float = 1.0
    outlier_k: float = 3.5
    seed: int = 0
    smoke: bool = False

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {self.warmup}")
        if self.min_repeats < 1:
            raise ConfigurationError(f"min_repeats must be >= 1, got {self.min_repeats}")
        if self.max_repeats < self.min_repeats:
            raise ConfigurationError(
                f"max_repeats ({self.max_repeats}) < min_repeats ({self.min_repeats})"
            )
        if self.max_time_s <= 0:
            raise ConfigurationError(f"max_time_s must be positive, got {self.max_time_s}")


#: The fast-mode policy behind ``repro bench --smoke`` and check.sh.
SMOKE_CONFIG = RunnerConfig(
    warmup=1, min_repeats=3, max_repeats=5, max_time_s=0.25, smoke=True
)


@dataclass
class BenchResult:
    """One benchmark's measured outcome."""

    name: str
    group: str
    kind: str
    stats: SampleStats
    samples_ms: list[float] = field(default_factory=list)
    notes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "kind": self.kind,
            "stats": self.stats.to_dict(),
            "samples_ms": list(self.samples_ms),
            "notes": dict(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        return cls(
            name=data["name"],
            group=data["group"],
            kind=data["kind"],
            stats=SampleStats.from_dict(data["stats"]),
            samples_ms=[float(x) for x in data.get("samples_ms", [])],
            notes=dict(data.get("notes", {})),
        )


def run_bench(
    spec: BenchSpec,
    config: RunnerConfig | None = None,
    wall_clock: Callable[[], float] | None = None,
) -> BenchResult:
    """Measure one benchmark under ``config``.

    ``wall_clock`` is injectable for the runner's own tests; production
    use always times with ``time.perf_counter``.
    """
    cfg = config or RunnerConfig()
    clock = wall_clock or time.perf_counter
    ctx = make_context(spec.name, seed=cfg.seed, smoke=cfg.smoke)
    workload = spec.setup(ctx)
    if not callable(workload):
        raise ConfigurationError(
            f"bench {spec.name!r}: setup must return a zero-arg workload, "
            f"got {type(workload).__name__}"
        )
    for _ in range(cfg.warmup):
        workload()
    samples_ms: list[float] = []
    budget_start = clock()
    while len(samples_ms) < cfg.max_repeats:
        t0 = clock()
        workload()
        samples_ms.append((clock() - t0) * 1e3)
        if (
            len(samples_ms) >= cfg.min_repeats
            and clock() - budget_start >= cfg.max_time_s
        ):
            break
    return BenchResult(
        name=spec.name,
        group=spec.group,
        kind=spec.kind,
        stats=summarize(samples_ms, outlier_k=cfg.outlier_k),
        samples_ms=samples_ms,
        notes=dict(ctx.notes),
    )


def run_all(
    config: RunnerConfig | None = None,
    filter_substr: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every registered benchmark (optionally name-filtered), in order."""
    cfg = config or RunnerConfig()
    results: list[BenchResult] = []
    for spec in all_benches():
        if filter_substr and filter_substr not in spec.name and filter_substr not in spec.group:
            continue
        if progress is not None:
            progress(f"bench {spec.group}/{spec.name} ...")
        results.append(run_bench(spec, cfg))
    return results


def smoke_config(base: RunnerConfig | None = None) -> RunnerConfig:
    """Derive a smoke-mode config from ``base`` (keeps its seed)."""
    if base is None:
        return SMOKE_CONFIG
    return replace(
        SMOKE_CONFIG,
        seed=base.seed,
        outlier_k=base.outlier_k,
    )
