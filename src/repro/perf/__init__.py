"""Performance observability: profiler, bench harness, regression gate.

See PERF.md at the repository root.  Three parts on top of
:mod:`repro.telemetry`:

* :mod:`repro.perf.profile` — the span profiler: self-vs-child rollups per
  span name, hot-span tables, per-frame wall-ms percentiles, and a
  collapsed-stack export (speedscope / FlameGraph);
* :mod:`repro.perf.registry` / :mod:`repro.perf.runner` — ``@bench``
  registered micro/macro benchmarks with seeded workloads, warmup,
  adaptive repeats, outlier rejection, and median/MAD/CV reporting;
* :mod:`repro.perf.baseline` — schema-versioned ``BENCH_*.json``
  snapshots and the ``--compare`` regression gate behind
  ``python -m repro bench``.
"""

from repro.perf.baseline import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    CompareEntry,
    CompareReport,
    build_snapshot,
    compare,
    load_snapshot,
    machine_meta,
    results_from_snapshot,
    write_snapshot,
)
from repro.perf.profile import (
    SpanProfile,
    SpanRollup,
    profile_dump,
    profile_spans,
    profile_tracer,
)
from repro.perf.registry import (
    BenchContext,
    BenchSpec,
    all_benches,
    bench,
    get_bench,
    load_suites,
)
from repro.perf.runner import (
    SMOKE_CONFIG,
    BenchResult,
    RunnerConfig,
    run_all,
    run_bench,
    smoke_config,
)
from repro.perf.stats import (
    SampleStats,
    mad,
    median,
    percentile,
    reject_outliers,
    relative_change,
    robust_cv,
    significant_slowdown,
    summarize,
)

__all__ = [
    "BenchContext",
    "BenchResult",
    "BenchSpec",
    "CompareEntry",
    "CompareReport",
    "RunnerConfig",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SMOKE_CONFIG",
    "SampleStats",
    "SpanProfile",
    "SpanRollup",
    "all_benches",
    "bench",
    "build_snapshot",
    "compare",
    "get_bench",
    "load_snapshot",
    "load_suites",
    "machine_meta",
    "mad",
    "median",
    "percentile",
    "profile_dump",
    "profile_spans",
    "profile_tracer",
    "reject_outliers",
    "relative_change",
    "results_from_snapshot",
    "robust_cv",
    "run_all",
    "run_bench",
    "significant_slowdown",
    "smoke_config",
    "summarize",
    "write_snapshot",
]
