"""Robust sample statistics for the bench runner and the regression gate.

Benchmark timings are small samples with heavy right tails (GC pauses, CPU
migrations), so everything here is order-statistic based: medians instead
of means, MAD instead of standard deviation, and a modified-z-score
outlier filter instead of trimming a fixed fraction.  The significance
test for the ``--compare`` gate follows the same philosophy: a slowdown
counts only when the medians differ by more than the configured threshold
*and* the gap clears the combined MAD noise floor of the two samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

#: Scale factor making the MAD a consistent sigma estimator for normals.
MAD_SIGMA_SCALE = 1.4826


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Uses the standard "linear" (type-7) estimator: rank ``(n-1) * q/100``
    interpolated between the two nearest order statistics.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    if not samples:
        raise ConfigurationError("percentile of an empty sample")
    ordered = sorted(float(x) for x in samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def median(samples: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(samples, 50.0)


def mad(samples: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if not samples:
        raise ConfigurationError("MAD of an empty sample")
    mid = median(samples) if center is None else center
    return median([abs(x - mid) for x in samples])


def robust_cv(samples: Sequence[float]) -> float:
    """Robust coefficient of variation: scaled MAD over the median.

    0.0 for a degenerate (constant or zero-median) sample, so callers can
    always compare it against a stability threshold.
    """
    mid = median(samples)
    if mid == 0.0:
        return 0.0
    return MAD_SIGMA_SCALE * mad(samples, center=mid) / abs(mid)


def reject_outliers(
    samples: Sequence[float], k: float = 3.5
) -> tuple[list[float], int]:
    """Drop samples whose modified z-score exceeds ``k``.

    The modified z-score is ``MAD_SIGMA_SCALE * |x - median| / MAD``; with
    a zero MAD (over half the sample identical) nothing is rejected.
    Returns ``(kept, n_rejected)``; ``kept`` preserves input order.
    """
    values = [float(x) for x in samples]
    if len(values) < 3:
        return values, 0
    mid = median(values)
    spread = mad(values, center=mid)
    if spread == 0.0:
        return values, 0
    kept = [x for x in values if MAD_SIGMA_SCALE * abs(x - mid) / spread <= k]
    if not kept:  # pathological sample: keep everything rather than nothing
        return values, 0
    return kept, len(values) - len(kept)


@dataclass(frozen=True)
class SampleStats:
    """Summary statistics of one benchmark's (outlier-filtered) timings."""

    n: int
    median: float
    mad: float
    cv: float
    mean: float
    min: float
    max: float
    rejected: int = 0

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "median": self.median,
            "mad": self.mad,
            "cv": self.cv,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "rejected": self.rejected,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SampleStats":
        return cls(
            n=int(data["n"]),
            median=float(data["median"]),
            mad=float(data["mad"]),
            cv=float(data["cv"]),
            mean=float(data["mean"]),
            min=float(data["min"]),
            max=float(data["max"]),
            rejected=int(data.get("rejected", 0)),
        )


def summarize(samples: Sequence[float], outlier_k: float = 3.5) -> SampleStats:
    """Outlier-filter ``samples`` and summarise what survives."""
    kept, rejected = reject_outliers(samples, k=outlier_k)
    return SampleStats(
        n=len(kept),
        median=median(kept),
        mad=mad(kept),
        cv=robust_cv(kept),
        mean=sum(kept) / len(kept),
        min=min(kept),
        max=max(kept),
        rejected=rejected,
    )


def significant_slowdown(
    baseline: SampleStats, current: SampleStats, threshold_rel: float
) -> bool:
    """Whether ``current`` is a statistically significant slowdown.

    Two conditions, both required:

    1. the median grew by more than ``threshold_rel`` (relative); and
    2. the absolute gap exceeds the combined MAD-derived noise floor of
       the two samples (so jittery benchmarks do not gate on noise).
    """
    if baseline.median <= 0.0:
        return False
    rel_change = (current.median - baseline.median) / baseline.median
    if rel_change <= threshold_rel:
        return False
    noise = MAD_SIGMA_SCALE * (baseline.mad + current.mad)
    return (current.median - baseline.median) > noise


def relative_change(baseline: SampleStats, current: SampleStats) -> float:
    """Relative median change (positive = slower than baseline)."""
    if baseline.median == 0.0:
        return 0.0
    return (current.median - baseline.median) / baseline.median
