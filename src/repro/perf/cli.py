"""The ``python -m repro bench`` subcommand.

    python -m repro bench                      # run all, write BENCH_<ts>.json
    python -m repro bench --label pr7          # ... BENCH_pr7.json
    python -m repro bench --smoke              # fast mode; no snapshot unless --out
    python -m repro bench --filter hog         # name/group substring filter
    python -m repro bench --compare BENCH.json # regression gate vs a baseline
    python -m repro bench --list               # registered benchmark catalog

Exit codes follow the ``repro lint`` convention: 0 clean (no significant
slowdowns), 1 regressions found, 2 usage/configuration error (including a
missing or unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ConfigurationError
from repro.perf.baseline import build_snapshot, compare, load_snapshot, write_snapshot
from repro.perf.registry import all_benches
from repro.perf.runner import RunnerConfig, run_all, smoke_config


def _render_results(results) -> str:
    lines = [
        f"  {'bench':<28} {'kind':<6} {'n':>3} {'median ms':>10} {'mad ms':>8} "
        f"{'cv':>6} {'min ms':>9} {'max ms':>9}"
    ]
    for result in results:
        s = result.stats
        lines.append(
            f"  {result.name:<28} {result.kind:<6} {s.n:>3} {s.median:>10.3f} "
            f"{s.mad:>8.3f} {s.cv:>6.3f} {s.min:>9.3f} {s.max:>9.3f}"
        )
    return "\n".join(lines)


def _macro_span_rollups(results) -> dict | None:
    """The macro drive's span rollups, lifted out of its result notes."""
    for result in results:
        rollups = result.notes.get("span_rollups")
        if result.kind == "macro" and rollups is not None:
            return rollups
    return None


def main(argv: list[str] | None = None) -> int:
    """Run the bench suite / regression gate; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="statistical benchmarks + BENCH_*.json baselines + regression gate",
    )
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only run benchmarks whose name or group contains SUBSTR")
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: fewer repeats, smaller workloads")
    parser.add_argument("--label", default=None,
                        help="snapshot label (default: a timestamp)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="snapshot path (default: BENCH_<label>.json; "
                             "smoke/compare runs only write when --out is given)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="compare against a BENCH_*.json baseline and gate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown threshold for --compare (default 0.10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for workload construction (default 0)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="compare-report format (default text)")
    parser.add_argument("--list", action="store_true", dest="list_benches",
                        help="print the benchmark catalog and exit")
    args = parser.parse_args(argv)

    if args.list_benches:
        benches = all_benches()
        width = max(len(spec.name) for spec in benches)
        for spec in benches:
            print(f"  {spec.name:<{width}}  [{spec.group}/{spec.kind}] {spec.summary}")
        return 0

    if args.threshold < 0:
        print("bench: --threshold must be >= 0", file=sys.stderr)
        return 2

    config = RunnerConfig(seed=args.seed)
    if args.smoke:
        config = smoke_config(config)

    try:
        baseline_doc = load_snapshot(args.compare) if args.compare else None
        results = run_all(
            config,
            filter_substr=args.filter,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except ConfigurationError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    if not results:
        print(f"bench: no benchmarks match filter {args.filter!r}", file=sys.stderr)
        return 2

    label = args.label or time.strftime("%Y%m%d-%H%M%S")
    print(f"bench: {len(results)} benchmarks (seed {config.seed}"
          f"{', smoke' if config.smoke else ''})")
    print(_render_results(results))

    exit_code = 0
    if baseline_doc is not None:
        report = compare(
            baseline_doc, results, threshold_rel=args.threshold, current_label=label
        )
        print(report.render_json() if args.format == "json" else report.render_text())
        if report.has_regressions:
            exit_code = 1

    # A plain full run always records its snapshot (the trajectory every
    # optimisation PR is judged against); smoke and compare runs only
    # write when the caller names a path.
    out_path = args.out
    if out_path is None and not args.smoke and args.compare is None:
        out_path = f"BENCH_{label}.json"
    if out_path is not None:
        doc = build_snapshot(
            results,
            label=label,
            runner=config,
            span_rollups=_macro_span_rollups(results),
        )
        write_snapshot(out_path, doc)
        print(f"bench: snapshot -> {out_path}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro bench
    sys.exit(main())
