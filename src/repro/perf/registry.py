"""The ``@bench`` registry: declarative micro/macro benchmark definitions.

A benchmark is a *setup* function decorated with :func:`bench`.  Setup
receives a :class:`BenchContext` (seeded RNG, smoke flag, a notes dict)
and returns the zero-argument workload the runner will time::

    @bench("hog_descriptor_ms", group="features")
    def hog_descriptor(ctx: BenchContext):
        window = ctx.rng.random((64, 64))
        ctx.digest(window)                  # workload fingerprint
        descriptor = HogDescriptor()
        def run():
            descriptor.extract(window)
        return run

Two invariants the ``bench-registry`` lint rule also enforces statically:

* benchmark names carry a unit suffix (``_ms``, ``_s``, ...) — every
  reported number says what it is;
* suites never read wall clocks — the runner owns all timing, so a suite
  cannot accidentally measure itself differently from its peers.

Workloads are deterministic: the context RNG is derived from the runner
seed and the benchmark name through :func:`repro.rng.derive_seed`, and
:meth:`BenchContext.digest` folds workload arrays into a checksum the
determinism tests (and curious humans) can compare across runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import derive_seed, make_rng

#: Accepted unit suffixes for benchmark names (mirrors the lint config).
UNIT_SUFFIXES = frozenset(
    {"s", "ms", "us", "ns", "mbs", "bps", "fps", "hz", "mhz", "cycles", "frames"}
)

BENCH_KINDS = ("micro", "macro")


@dataclass
class BenchContext:
    """What a benchmark's setup function gets to work with.

    Attributes:
        name: The registered benchmark name.
        rng: Seeded generator (derived from the runner seed + name), the
            only randomness source a suite should use.
        smoke: True under ``--smoke``; setups shrink their workloads.
        notes: Free-form metadata the setup may attach; lands in the
            snapshot next to the timing stats (digests, sizes, rollups).
    """

    name: str
    rng: np.random.Generator
    smoke: bool = False
    notes: dict[str, Any] = field(default_factory=dict)

    def note(self, key: str, value: Any) -> None:
        self.notes[key] = value

    def digest(self, *arrays: np.ndarray) -> str:
        """Fold arrays into the workload fingerprint note and return it.

        Calling it repeatedly chains the checksum, so multi-part workloads
        accumulate one stable fingerprint.
        """
        crc = int(self.notes.get("workload_digest", "0"), 16)
        for array in arrays:
            data = np.ascontiguousarray(array)
            crc = zlib.crc32(data.tobytes(), crc)
            crc = zlib.crc32(str(data.shape).encode(), crc)
        fingerprint = f"{crc:08x}"
        self.notes["workload_digest"] = fingerprint
        return fingerprint


#: Setup callable: ``BenchContext -> zero-arg workload``.
BenchSetup = Callable[[BenchContext], Callable[[], Any]]


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark."""

    name: str
    group: str
    kind: str
    setup: BenchSetup
    summary: str = ""


_REGISTRY: dict[str, BenchSpec] = {}


def bench(
    name: str, group: str, kind: str = "micro", summary: str = ""
) -> Callable[[BenchSetup], BenchSetup]:
    """Register a benchmark setup function under ``name``.

    ``name`` must end in a unit suffix; ``kind`` is "micro" (one hot path)
    or "macro" (an end-to-end scenario).
    """
    tokens = name.lower().split("_")
    if tokens[-1] not in UNIT_SUFFIXES:
        raise ConfigurationError(
            f"bench name {name!r} has no unit suffix "
            f"(expected one of: {'/'.join(sorted(UNIT_SUFFIXES))})"
        )
    if kind not in BENCH_KINDS:
        raise ConfigurationError(f"bench kind must be one of {BENCH_KINDS}, got {kind!r}")
    if not group:
        raise ConfigurationError(f"bench {name!r} needs a non-empty group")

    def decorate(setup: BenchSetup) -> BenchSetup:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate bench name {name!r}")
        _REGISTRY[name] = BenchSpec(
            name=name, group=group, kind=kind, setup=setup, summary=summary
        )
        return setup

    return decorate


def load_suites() -> None:
    """Import the suite package, populating the registry exactly once."""
    import repro.perf.suites  # noqa: F401


def all_benches() -> list[BenchSpec]:
    """Every registered benchmark, sorted by (group, name)."""
    load_suites()
    return sorted(_REGISTRY.values(), key=lambda s: (s.group, s.name))


def get_bench(name: str) -> BenchSpec:
    """Look one benchmark up by exact name."""
    load_suites()
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown bench {name!r} (known: {', '.join(sorted(_REGISTRY))})"
        )
    return _REGISTRY[name]


def make_context(name: str, seed: int, smoke: bool) -> BenchContext:
    """The runner's context factory (exposed for the determinism tests)."""
    return BenchContext(name=name, rng=make_rng(derive_seed(seed, name)), smoke=smoke)
