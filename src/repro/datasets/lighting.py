"""Lighting conditions and photometric models.

The paper's whole premise: "the vehicle itself is not a static object with
regards to its appearance in different lighting conditions", so detection is
split across three named conditions — *day*, *dusk*, *dark* — each with its
own detector.  This module defines those conditions and the photometric
parameters the scene renderer uses to realise them.

Ambient light is expressed in lux on a log scale roughly matching real
driving: direct daylight 10k-100k lx, street-lit urban dusk/night 5-50 lx,
unlit rural road < 1 lx.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import DatasetError


class LightingCondition(enum.Enum):
    """The paper's three ambient-light regimes."""

    DAY = "day"
    DUSK = "dusk"
    DARK = "dark"


# Lux boundaries between regimes (see repro.adaptive for the hysteresis
# controller that consumes these).
DUSK_LUX_UPPER = 1000.0  # above: day
DARK_LUX_UPPER = 5.0  # below: dark


def condition_for_lux(lux: float) -> LightingCondition:
    """Map an ambient illuminance to its lighting condition (no hysteresis)."""
    if lux < 0:
        raise DatasetError(f"lux must be >= 0, got {lux}")
    if lux >= DUSK_LUX_UPPER:
        return LightingCondition.DAY
    if lux >= DARK_LUX_UPPER:
        return LightingCondition.DUSK
    return LightingCondition.DARK


@dataclass(frozen=True)
class LightingModel:
    """Photometric parameters for rendering one condition.

    Attributes:
        condition: The regime this model realises.
        ambient: Scene reflectance multiplier in [0, 1]; 1 = full daylight.
        sky_brightness: Top-of-frame sky level in [0, 1].
        headlights_on: Whether vehicles run their headlights.
        taillights_on: Whether taillights are lit (drivers switch on at dusk).
        taillight_intensity: Peak emissive value of a taillight in [0, 1].
        road_lights: Whether street lamps appear (urban dusk scenes).
        glow_scale: Bloom radius multiplier around emissive sources.
        noise_sigma: Additive Gaussian sensor-noise sigma (low light = high
            gain = more noise).
        contrast: Global contrast multiplier applied around mid-gray.
        blur_sigma: Optical/exposure blur sigma in pixels (long exposures in
            low light soften boundaries — "the boundaries are not as sharp
            as they are in light environment").
    """

    condition: LightingCondition
    ambient: float
    sky_brightness: float
    headlights_on: bool
    taillights_on: bool
    taillight_intensity: float
    road_lights: bool
    glow_scale: float
    noise_sigma: float
    contrast: float
    blur_sigma: float = 0.0

    def __post_init__(self) -> None:
        for name in ("ambient", "sky_brightness", "taillight_intensity", "contrast"):
            value = getattr(self, name)
            if value < 0:
                raise DatasetError(f"{name} must be >= 0, got {value}")
        if self.noise_sigma < 0 or self.glow_scale <= 0:
            raise DatasetError("noise_sigma must be >= 0 and glow_scale > 0")
        if self.blur_sigma < 0:
            raise DatasetError(f"blur_sigma must be >= 0, got {self.blur_sigma}")


DAY_LIGHTING = LightingModel(
    condition=LightingCondition.DAY,
    ambient=1.0,
    sky_brightness=0.92,
    headlights_on=False,
    taillights_on=False,
    taillight_intensity=0.0,
    road_lights=False,
    glow_scale=1.0,
    noise_sigma=0.01,
    contrast=1.0,
)

DUSK_LIGHTING = LightingModel(
    condition=LightingCondition.DUSK,
    ambient=0.22,
    sky_brightness=0.24,
    headlights_on=True,
    taillights_on=True,
    taillight_intensity=0.88,
    road_lights=True,
    glow_scale=1.9,
    noise_sigma=0.045,
    contrast=0.72,
    blur_sigma=0.9,
)

DARK_LIGHTING = LightingModel(
    condition=LightingCondition.DARK,
    ambient=0.045,
    sky_brightness=0.02,
    headlights_on=True,
    taillights_on=True,
    taillight_intensity=0.95,
    road_lights=False,
    glow_scale=1.6,
    noise_sigma=0.05,
    contrast=0.6,
    blur_sigma=1.2,
)

PRESETS: dict[LightingCondition, LightingModel] = {
    LightingCondition.DAY: DAY_LIGHTING,
    LightingCondition.DUSK: DUSK_LIGHTING,
    LightingCondition.DARK: DARK_LIGHTING,
}


def lighting_for_condition(condition: LightingCondition) -> LightingModel:
    """Preset photometric model of a condition."""
    return PRESETS[condition]


def lighting_for_lux(lux: float) -> LightingModel:
    """Interpolated photometric model for an arbitrary illuminance.

    Interpolates ``ambient``/``sky``/``noise``/``contrast`` between the
    presets on a log-lux axis, so a drive trace with a continuously falling
    sun renders smoothly while the *condition* label still changes at the
    regime boundaries.
    """
    condition = condition_for_lux(lux)
    base = PRESETS[condition]
    if condition is LightingCondition.DAY:
        return base
    if condition is LightingCondition.DUSK:
        # Blend dusk -> day as lux rises toward the day boundary.
        t = _log_blend(lux, DARK_LUX_UPPER, DUSK_LUX_UPPER)
        other = DAY_LIGHTING
    else:
        # Blend dark -> dusk as lux rises toward the dusk boundary.
        t = _log_blend(lux, 0.05, DARK_LUX_UPPER)
        other = DUSK_LIGHTING
    return LightingModel(
        condition=condition,
        ambient=_lerp(base.ambient, other.ambient, t),
        sky_brightness=_lerp(base.sky_brightness, other.sky_brightness, t),
        headlights_on=base.headlights_on,
        taillights_on=base.taillights_on,
        taillight_intensity=base.taillight_intensity,
        road_lights=base.road_lights,
        glow_scale=_lerp(base.glow_scale, other.glow_scale, t),
        noise_sigma=_lerp(base.noise_sigma, other.noise_sigma, t),
        contrast=_lerp(base.contrast, other.contrast, t),
        blur_sigma=_lerp(base.blur_sigma, other.blur_sigma, t),
    )


# Per-sample lighting samplers ---------------------------------------------
#
# Real corpora are photometrically heterogeneous: UPM spans morning to late
# afternoon; SYSU spans well-lit urban dusk down to nearly dark streets.
# Sampling a fresh LightingModel per crop reproduces that spread — and it is
# what makes the paper's *combined* model win at dusk: the bright end of the
# dusk distribution looks day-like, so day training data helps there.


def sample_day_lighting(rng) -> LightingModel:
    """Day lighting with mild exposure/weather jitter."""
    return LightingModel(
        condition=LightingCondition.DAY,
        ambient=float(rng.uniform(0.82, 1.0)),
        sky_brightness=float(rng.uniform(0.82, 0.95)),
        headlights_on=False,
        taillights_on=False,
        taillight_intensity=0.0,
        road_lights=False,
        glow_scale=1.0,
        noise_sigma=float(rng.uniform(0.008, 0.022)),
        contrast=float(rng.uniform(0.9, 1.05)),
        blur_sigma=float(rng.uniform(0.0, 0.3)),
    )


def sample_dusk_lighting(rng, t_range: tuple[float, float] = (0.1, 1.0)) -> LightingModel:
    """Dusk lighting spanning bright urban evening down to nearly dark.

    ``t`` near 1 is the bright end (day-like bodies, lights already on);
    ``t`` near 0 approaches the dark regime.  ``t_range`` narrows the
    sampled span; corpora with different coverage of the dusk brightness
    axis are how the combined model's Table-I advantage arises (the dusk
    *training* split under-covers the bright end that day data supplies).
    """
    lo, hi = t_range
    if not 0.0 <= lo <= hi <= 1.0:
        raise DatasetError(f"t_range must satisfy 0 <= lo <= hi <= 1, got {t_range}")
    t = float(rng.uniform(lo, hi))
    return LightingModel(
        condition=LightingCondition.DUSK,
        ambient=0.16 + 0.46 * t,
        sky_brightness=0.1 + 0.38 * t,
        headlights_on=True,
        taillights_on=True,
        # Lamps dominate the dark end; toward the bright end the ambient
        # light washes the bloom out and body shape carries the class.
        taillight_intensity=0.98 - 0.75 * t,
        road_lights=True,
        glow_scale=2.1 - 1.1 * t,
        noise_sigma=0.052 - 0.032 * t,
        contrast=0.62 + 0.33 * t,
        blur_sigma=1.0 - 0.55 * t,
    )


def sample_dark_lighting(rng) -> LightingModel:
    """Very dark lighting with small gain/exposure jitter."""
    return LightingModel(
        condition=LightingCondition.DARK,
        ambient=float(rng.uniform(0.03, 0.07)),
        sky_brightness=float(rng.uniform(0.01, 0.04)),
        headlights_on=True,
        taillights_on=True,
        taillight_intensity=float(rng.uniform(0.88, 1.0)),
        road_lights=bool(rng.random() < 0.2),
        glow_scale=float(rng.uniform(1.4, 1.9)),
        noise_sigma=float(rng.uniform(0.04, 0.06)),
        contrast=float(rng.uniform(0.55, 0.68)),
        blur_sigma=float(rng.uniform(1.0, 1.4)),
    )


SAMPLERS = {
    LightingCondition.DAY: sample_day_lighting,
    LightingCondition.DUSK: sample_dusk_lighting,
    LightingCondition.DARK: sample_dark_lighting,
}


def sample_lighting(condition: LightingCondition, rng) -> LightingModel:
    """A randomly jittered lighting model for the given condition."""
    return SAMPLERS[condition](rng)


def _lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def _log_blend(lux: float, lo: float, hi: float) -> float:
    """Position of lux in [lo, hi] on a log axis, clamped to [0, 1]."""
    lux = max(lux, 1e-3)
    t = (math.log10(lux) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    return min(max(t, 0.0), 1.0)
