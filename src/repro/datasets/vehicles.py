"""Procedural rear-view vehicle sprites.

Renders the visual cues the paper's detectors key on:

* day/dusk — body edges and shape boundaries, shadow under the car,
  windshield/window contrast (the HOG-discriminative structure);
* dusk/dark — a *pair* of red taillights with bloom, at a lane-plausible
  spacing (the cue the dark pipeline's DBN + pairing SVM exploits).

Sprites are rendered into an RGB patch with an alpha mask so the scene
renderer can composite them at any distance/scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.lighting import LightingModel
from repro.errors import DatasetError
from repro.imaging.draw import fill_disk, fill_rect, light_glow
from repro.imaging.geometry import Rect


# A muted, plausible palette of car body colors (RGB reflectance).
BODY_COLORS = np.array(
    [
        [0.82, 0.82, 0.84],  # silver
        [0.12, 0.12, 0.14],  # black
        [0.78, 0.78, 0.74],  # white
        [0.45, 0.08, 0.08],  # dark red
        [0.10, 0.16, 0.35],  # navy
        [0.16, 0.30, 0.16],  # green
        [0.42, 0.30, 0.18],  # brown
        [0.55, 0.57, 0.60],  # gray
    ]
)


@dataclass(frozen=True)
class VehicleSpec:
    """Geometry and appearance of one rendered vehicle.

    Attributes:
        width: Sprite width in pixels (height is derived, rear aspect ~0.85).
        color: RGB body reflectance in [0, 1].
        taillight_separation: Fraction of body width between the taillights.
        taillight_radius: Taillight radius as a fraction of body width.
        has_window: Render the rear window (hatchbacks vs vans).
    """

    width: int
    color: tuple[float, float, float]
    taillight_separation: float = 0.68
    taillight_radius: float = 0.055
    has_window: bool = True

    def __post_init__(self) -> None:
        if self.width < 8:
            raise DatasetError(f"vehicle width must be >= 8 px, got {self.width}")
        if not 0.3 <= self.taillight_separation <= 0.95:
            raise DatasetError(
                f"taillight_separation must be in [0.3, 0.95], got {self.taillight_separation}"
            )
        if not 0.01 <= self.taillight_radius <= 0.2:
            raise DatasetError(
                f"taillight_radius must be in [0.01, 0.2], got {self.taillight_radius}"
            )

    @property
    def height(self) -> int:
        return max(8, int(round(self.width * 0.85)))


def random_vehicle_spec(rng: np.random.Generator, width: int) -> VehicleSpec:
    """Sample a plausible vehicle for the given on-screen width."""
    color = BODY_COLORS[rng.integers(0, len(BODY_COLORS))]
    jitter = rng.normal(0.0, 0.03, size=3)
    color = tuple(np.clip(color + jitter, 0.02, 0.95).tolist())
    return VehicleSpec(
        width=width,
        color=color,  # type: ignore[arg-type]
        taillight_separation=float(rng.uniform(0.60, 0.78)),
        taillight_radius=float(rng.uniform(0.045, 0.07)),
        has_window=bool(rng.random() < 0.85),
    )


@dataclass
class VehicleSprite:
    """A rendered vehicle patch.

    Attributes:
        rgb: (H, W, 3) reflectance patch (pre-lighting).
        emissive: (H, W, 3) additive light patch (taillights with bloom).
        alpha: (H, W) opacity mask of the body silhouette.
        taillights: Two (x, y) centers in patch coordinates, or empty when
            unlit.
        body_rect: Tight body rectangle inside the patch.
    """

    rgb: np.ndarray
    emissive: np.ndarray
    alpha: np.ndarray
    taillights: list[tuple[float, float]]
    body_rect: Rect


def render_vehicle(spec: VehicleSpec, lighting: LightingModel, rng: np.random.Generator) -> VehicleSprite:
    """Render the rear view of a vehicle under a lighting model.

    The reflectance layer is lit later by the scene renderer (multiplied by
    ambient); taillight emission is returned separately because light *adds*.
    """
    w = spec.width
    h = spec.height
    # Patch leaves a small margin for the shadow and glow.
    margin = max(2, w // 8)
    patch_w, patch_h = w + 2 * margin, h + 2 * margin
    rgb = np.zeros((patch_h, patch_w, 3), dtype=np.float64)
    alpha = np.zeros((patch_h, patch_w), dtype=np.float64)
    emissive = np.zeros((patch_h, patch_w, 3), dtype=np.float64)

    body = Rect(float(margin), float(margin + h * 0.18), float(w), float(h * 0.72))
    cabin = Rect(
        float(margin + w * 0.12),
        float(margin),
        float(w * 0.76),
        float(h * 0.32),
    )
    color = np.asarray(spec.color)

    # Shadow under the car: a dark band below the body (day/dusk cue).
    shadow = Rect(body.x, body.y2 - h * 0.06, body.w, h * 0.14 + margin * 0.5)
    fill_rect(rgb, shadow, color * 0.0 + 0.03)
    fill_rect(alpha, shadow, 0.9)

    # Cabin / roof slab, slightly darker than the body.
    fill_rect(rgb, cabin, color * 0.8)
    fill_rect(alpha, cabin, 1.0)
    # Body.
    fill_rect(rgb, body, color)
    fill_rect(alpha, body, 1.0)

    # Rear window: bright-ish during day (sky reflection), dark otherwise.
    if spec.has_window:
        window = Rect(
            cabin.x + w * 0.06,
            cabin.y + h * 0.05,
            cabin.w - w * 0.12,
            cabin.h * 0.72,
        )
        window_tone = 0.55 * lighting.sky_brightness + 0.06
        fill_rect(rgb, window, (window_tone, window_tone, window_tone * 1.05))

    # Bumper stripe.
    bumper = Rect(body.x, body.y2 - h * 0.16, body.w, h * 0.10)
    fill_rect(rgb, bumper, color * 0.65 + 0.05)

    # License plate: small bright rectangle low-center.
    plate_w = w * 0.22
    plate = Rect(body.x + (body.w - plate_w) / 2.0, body.y2 - h * 0.30, plate_w, h * 0.09)
    fill_rect(rgb, plate, (0.75, 0.75, 0.70))

    # Wheels peeking below the body.
    wheel_r = max(1.5, w * 0.07)
    for frac in (0.16, 0.84):
        fill_disk(rgb, body.x + body.w * frac, body.y2 - 1, wheel_r, (0.05, 0.05, 0.05))
        fill_disk(alpha, body.x + body.w * frac, body.y2 - 1, wheel_r, 1.0)

    # Taillights: when lit, a bright red lens plus bloom; when unlit, the
    # lens is a low-contrast housing that barely differs from the body, so
    # it cannot stand in for a lit lamp in any feature space.
    sep = spec.taillight_separation * w / 2.0
    cx = body.x + body.w / 2.0
    ty = body.y + body.h * 0.28
    radius = max(1.0, spec.taillight_radius * w)
    centers = [(cx - sep, ty), (cx + sep, ty)]
    if lighting.taillights_on:
        lens_color = (0.55, 0.06, 0.06)
    else:
        lens_color = tuple(np.clip(color * 0.85 + np.array([0.05, 0.0, 0.0]), 0.0, 1.0).tolist())
    for lx, ly in centers:
        fill_disk(rgb, lx, ly, radius, lens_color)
    taillights: list[tuple[float, float]] = []
    if lighting.taillights_on and lighting.taillight_intensity > 0:
        glow_r = radius * 2.2 * lighting.glow_scale
        for lx, ly in centers:
            glow = light_glow(patch_h, patch_w, lx, ly, glow_r, lighting.taillight_intensity)
            emissive[..., 0] += glow
            emissive[..., 1] += glow * 0.22
            emissive[..., 2] += glow * 0.12
            taillights.append((lx, ly))
        # Slight per-vehicle asymmetry in brightness, as in real footage.
        emissive *= float(rng.uniform(0.9, 1.0))

    return VehicleSprite(
        rgb=rgb,
        emissive=np.clip(emissive, 0.0, 1.0),
        alpha=np.clip(alpha, 0.0, 1.0),
        taillights=taillights,
        body_rect=Rect(body.x, cabin.y, body.w, body.y2 - cabin.y),
    )


def render_headlight_pair(
    height: int,
    width: int,
    cx: float,
    cy: float,
    separation: float,
    radius: float,
    intensity: float,
    glow_scale: float,
) -> np.ndarray:
    """Emissive patch of an *oncoming* vehicle's white headlights.

    These are the distractors the dark pipeline must reject: bright but
    white (low Cr), unlike red taillights.
    """
    if radius <= 0 or separation <= 0:
        raise DatasetError("headlight radius and separation must be positive")
    emissive = np.zeros((height, width, 3), dtype=np.float64)
    for lx in (cx - separation / 2.0, cx + separation / 2.0):
        glow = light_glow(height, width, lx, cy, radius * 2.0 * glow_scale, intensity)
        emissive[..., 0] += glow
        emissive[..., 1] += glow * 0.97
        emissive[..., 2] += glow * 0.90
    return np.clip(emissive, 0.0, 1.0)
