"""Procedural road-scene renderer with ground truth.

Produces full frames (for the detection pipelines and the end-to-end system
simulation) and window-sized crops (for the Table-I classification corpora),
under any :class:`~repro.datasets.lighting.LightingModel`.

The renderer composes three layers:

1. *reflectance* — sky, road, roadside, objects; multiplied by the lighting
   model's ``ambient`` term;
2. *emissive* — taillights, headlights, street lamps; added on top (light
   adds, it is not scaled by ambient);
3. *sensor* — global contrast and Gaussian noise (high gain at night).

Ground truth records every vehicle body box, its lit taillight centers, and
every pedestrian box, so detection metrics need no manual annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.lighting import LightingCondition, LightingModel, lighting_for_condition
from repro.datasets.pedestrians import PedestrianSprite, random_pedestrian_spec, render_pedestrian
from repro.datasets.vehicles import (
    VehicleSprite,
    random_vehicle_spec,
    render_headlight_pair,
    render_vehicle,
)
from repro.errors import DatasetError
from repro.imaging.draw import fill_rect, light_glow
from repro.imaging.geometry import Rect
from repro.imaging.image import additive_light
from repro.rng import make_rng


@dataclass
class SceneObject:
    """Ground truth for one object placed in a frame.

    ``track_id`` is set by the sequence renderer (``datasets.sequences``) to
    give objects stable identities across frames; single-frame renders leave
    it ``None``.
    """

    kind: str  # "vehicle" | "pedestrian" | "headlights"
    rect: Rect
    taillights: list[tuple[float, float]] = field(default_factory=list)
    track_id: int | None = None


@dataclass
class SceneFrame:
    """A rendered frame plus its ground truth.

    Attributes:
        rgb: (H, W, 3) image in [0, 1].
        lighting: The photometric model used.
        objects: All placed objects.
    """

    rgb: np.ndarray
    lighting: LightingModel
    objects: list[SceneObject]

    @property
    def condition(self) -> LightingCondition:
        return self.lighting.condition

    @property
    def vehicles(self) -> list[SceneObject]:
        return [o for o in self.objects if o.kind == "vehicle"]

    @property
    def pedestrians(self) -> list[SceneObject]:
        return [o for o in self.objects if o.kind == "pedestrian"]

    @property
    def vehicle_boxes(self) -> list[Rect]:
        return [o.rect for o in self.vehicles]

    @property
    def pedestrian_boxes(self) -> list[Rect]:
        return [o.rect for o in self.pedestrians]


@dataclass(frozen=True)
class SceneConfig:
    """Scene composition parameters.

    Attributes:
        height, width: Frame size in pixels.
        n_vehicles: Preceding vehicles to place (rear views, taillights
            toward the camera).
        n_pedestrians: Pedestrians on the roadside.
        n_oncoming: Oncoming headlight pairs (dusk/dark distractors).
        horizon: Fraction of the height where the road meets the sky.
        vehicle_fill: (near, far) vehicle width as a fraction of the frame
            width; near vehicles use the upper bound.
        seed: Deterministic rendering seed.
    """

    height: int = 360
    width: int = 640
    n_vehicles: int = 1
    n_pedestrians: int = 0
    n_oncoming: int = 0
    horizon: float = 0.42
    vehicle_fill: tuple[float, float] = (0.08, 0.30)
    wet_road_probability: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height < 48 or self.width < 48:
            raise DatasetError(f"frame must be at least 48x48, got {self.height}x{self.width}")
        if min(self.n_vehicles, self.n_pedestrians, self.n_oncoming) < 0:
            raise DatasetError("object counts must be >= 0")
        if not 0.2 <= self.horizon <= 0.7:
            raise DatasetError(f"horizon must be in [0.2, 0.7], got {self.horizon}")
        lo, hi = self.vehicle_fill
        if not 0.02 <= lo <= hi <= 0.5:
            raise DatasetError(f"vehicle_fill must satisfy 0.02 <= lo <= hi <= 0.5, got {self.vehicle_fill}")
        if not 0.0 <= self.wet_road_probability <= 1.0:
            raise DatasetError(
                f"wet_road_probability must be in [0, 1], got {self.wet_road_probability}"
            )


def render_background(
    height: int,
    width: int,
    lighting: LightingModel,
    rng: np.random.Generator,
    horizon: float = 0.42,
) -> tuple[np.ndarray, np.ndarray]:
    """Sky + road + roadside reflectance, and street-lamp emissive layer.

    Returns:
        (reflectance, emissive) RGB layers.
    """
    reflectance = np.zeros((height, width, 3), dtype=np.float64)
    emissive = np.zeros((height, width, 3), dtype=np.float64)
    horizon_y = int(height * horizon)

    # Sky: vertical gradient from sky_brightness down to ~60% of it.
    sky = np.linspace(lighting.sky_brightness, lighting.sky_brightness * 0.6, max(horizon_y, 1))
    reflectance[:horizon_y, :, 0] = sky[:, None] * 0.92
    reflectance[:horizon_y, :, 1] = sky[:, None] * 0.96
    reflectance[:horizon_y, :, 2] = sky[:, None] * 1.0

    # Ground: asphalt with slight vertical shading (nearer = darker).
    ground = np.linspace(0.42, 0.3, height - horizon_y)
    for c, tint in enumerate((1.0, 1.0, 1.02)):
        reflectance[horizon_y:, :, c] = ground[:, None] * tint

    # Roadside strips: slightly different tone with clutter blocks.
    verge_w = int(width * 0.12)
    reflectance[horizon_y:, :verge_w] *= 0.8
    reflectance[horizon_y:, -verge_w:] *= 0.8
    for _ in range(rng.integers(2, 6)):
        # Buildings / trees on the horizon as dark slabs (day texture).
        bw = int(rng.uniform(0.05, 0.18) * width)
        bh = int(rng.uniform(0.05, 0.16) * height)
        bx = int(rng.uniform(0, width - bw))
        tone = float(rng.uniform(0.15, 0.45))
        fill_rect(reflectance, Rect(float(bx), float(horizon_y - bh), float(bw), float(bh)), (tone, tone * 1.02, tone * 0.98))

    # Lane markings: dashed center lines converging to the vanishing point.
    vanish_x = width / 2.0 + float(rng.uniform(-0.05, 0.05)) * width
    for lane_offset in (-0.16, 0.16):
        bottom_x = width / 2.0 + lane_offset * width * 2.2
        n_dashes = 7
        for d in range(n_dashes):
            t0 = d / n_dashes
            t1 = t0 + 0.45 / n_dashes
            y0 = horizon_y + (height - horizon_y) * t0
            y1 = horizon_y + (height - horizon_y) * t1
            x0 = vanish_x + (bottom_x - vanish_x) * t0
            x1 = vanish_x + (bottom_x - vanish_x) * t1
            wline = max(1.0, (t0 * 0.012 + 0.002) * width)
            fill_rect(
                reflectance,
                Rect(min(x0, x1), y0, abs(x1 - x0) + wline, max(1.0, y1 - y0)),
                (0.85, 0.85, 0.8),
            )

    # Street lamps at dusk: emissive orange points along the verge.
    if lighting.road_lights:
        for _ in range(rng.integers(1, 4)):
            lx = float(rng.choice([rng.uniform(0.02, 0.1), rng.uniform(0.9, 0.98)])) * width
            ly = float(rng.uniform(0.15, 0.45)) * height
            glow = light_glow(height, width, lx, ly, max(2.0, 0.012 * width) * lighting.glow_scale, 0.8)
            emissive[..., 0] += glow * 1.0
            emissive[..., 1] += glow * 0.8
            emissive[..., 2] += glow * 0.45
    return reflectance, np.clip(emissive, 0.0, 1.0)


def _composite_sprite(
    reflectance: np.ndarray,
    emissive: np.ndarray,
    sprite_rgb: np.ndarray,
    sprite_emissive: np.ndarray | None,
    alpha: np.ndarray,
    x: int,
    y: int,
) -> None:
    """Alpha-composite a sprite's reflectance and add its emission."""
    height, width = reflectance.shape[:2]
    ph, pw = alpha.shape
    x1, y1 = max(x, 0), max(y, 0)
    x2, y2 = min(x + pw, width), min(y + ph, height)
    if x2 <= x1 or y2 <= y1:
        return
    sub_a = alpha[y1 - y : y2 - y, x1 - x : x2 - x][..., None]
    sub_rgb = sprite_rgb[y1 - y : y2 - y, x1 - x : x2 - x]
    region = reflectance[y1:y2, x1:x2]
    reflectance[y1:y2, x1:x2] = region * (1.0 - sub_a) + sub_rgb * sub_a
    if sprite_emissive is not None:
        additive_light(emissive, sprite_emissive, x, y)


def add_wet_road_reflections(
    emissive: np.ndarray,
    lights: list[tuple[float, float]],
    lighting: LightingModel,
    rng: np.random.Generator,
) -> None:
    """Vertical smears of lamp light on a wet road surface, in place.

    The classic nighttime false-positive source: each lit lamp mirrors into
    an elongated red streak below it.  Blob-area heuristics read the streaks
    as taillight-sized blobs and pair them into phantom vehicles; the
    paper's DBN classifies their elongated shape as background.
    """
    height, width = emissive.shape[:2]
    for (lx, ly) in lights:
        length = int(rng.uniform(0.10, 0.25) * height)
        half_w = max(1.0, 0.9 * lighting.glow_scale)
        # The mirror image starts below the vehicle: the body occludes the
        # road surface immediately beneath the lamp.
        y0 = int(ly) + int((0.06 + rng.uniform(0.0, 0.05)) * height)
        for dy in range(length):
            y = y0 + dy
            if y >= height:
                break
            fade = (1.0 - 0.6 * dy / max(length, 1)) * lighting.taillight_intensity * 0.9
            x1 = max(0, int(lx - half_w))
            x2 = min(width, int(lx + half_w) + 1)
            emissive[y, x1:x2, 0] = np.minimum(emissive[y, x1:x2, 0] + fade, 1.0)
            emissive[y, x1:x2, 1] = np.minimum(emissive[y, x1:x2, 1] + fade * 0.2, 1.0)
            emissive[y, x1:x2, 2] = np.minimum(emissive[y, x1:x2, 2] + fade * 0.1, 1.0)


def apply_sensor_model(image: np.ndarray, lighting: LightingModel, rng: np.random.Generator) -> np.ndarray:
    """Exposure blur, contrast around mid-gray, Gaussian noise; clip to [0,1].

    The blur models the longer exposures of low-light capture that soften
    object boundaries — the structural change that degrades HOG at dusk.
    """
    out = np.asarray(image, dtype=np.float64)
    if lighting.blur_sigma > 0:
        from repro.imaging.filters import gaussian_blur

        if out.ndim == 3:
            out = np.stack(
                [gaussian_blur(out[..., c], lighting.blur_sigma) for c in range(3)], axis=-1
            )
        else:
            out = gaussian_blur(out, lighting.blur_sigma)
    # Contrast loss pivots on the scene's own level (no exposure shift):
    # dark scenes stay dark, they just flatten.
    pivot = float(out.mean())
    out = pivot + (out - pivot) * lighting.contrast
    if lighting.noise_sigma > 0:
        out = out + rng.normal(0.0, lighting.noise_sigma, size=out.shape)
    return np.clip(out, 0.0, 1.0)


def render_scene(config: SceneConfig, lighting: LightingModel) -> SceneFrame:
    """Render a full frame with vehicles, pedestrians, and distractors."""
    rng = make_rng(config.seed)
    height, width = config.height, config.width
    reflectance, emissive = render_background(height, width, lighting, rng, config.horizon)
    objects: list[SceneObject] = []
    horizon_y = int(height * config.horizon)

    # Vehicles: nearer = lower in frame and larger.  Sort far-to-near so
    # nearer sprites composite on top.
    depths = sorted(rng.uniform(0.25, 1.0, size=config.n_vehicles), reverse=False)
    fill_far, fill_near = config.vehicle_fill
    for depth in depths:  # depth 1.0 = nearest
        vw = int(width * (fill_far + (fill_near - fill_far) * depth))
        spec = random_vehicle_spec(rng, vw)
        sprite = render_vehicle(spec, lighting, rng)
        road_y = horizon_y + (height - horizon_y) * (0.15 + 0.8 * depth)
        lane = rng.choice([-0.13, 0.0, 0.13])
        cx = width / 2.0 + lane * width + rng.uniform(-0.03, 0.03) * width
        x = int(cx - sprite.alpha.shape[1] / 2.0)
        y = int(road_y - sprite.alpha.shape[0])
        _composite_sprite(reflectance, emissive, sprite.rgb, sprite.emissive, sprite.alpha, x, y)
        body = sprite.body_rect.translated(float(x), float(y))
        clipped = body.clipped(width, height)
        if clipped is not None:
            objects.append(
                SceneObject(
                    kind="vehicle",
                    rect=clipped,
                    taillights=[(tx + x, ty + y) for tx, ty in sprite.taillights],
                )
            )

    # Oncoming headlights (only meaningful when lights are on).
    if lighting.headlights_on:
        for _ in range(config.n_oncoming):
            depth = float(rng.uniform(0.3, 0.9))
            sep = width * (0.03 + 0.09 * depth)
            cy = horizon_y + (height - horizon_y) * (0.1 + 0.6 * depth)
            cx = width * float(rng.uniform(0.12, 0.35))
            radius = max(1.5, width * 0.008 * (0.5 + depth))
            patch = render_headlight_pair(
                height, width, cx, cy, sep, radius, 0.95, lighting.glow_scale
            )
            additive_light(emissive, patch, 0, 0)
            objects.append(
                SceneObject(
                    kind="headlights",
                    rect=Rect(cx - sep, cy - radius * 3, sep * 2, radius * 6),
                )
            )

    # Pedestrians on the verge.
    for _ in range(config.n_pedestrians):
        depth = float(rng.uniform(0.35, 1.0))
        ph = int(height * (0.1 + 0.22 * depth))
        spec = random_pedestrian_spec(rng, max(16, ph))
        sprite: PedestrianSprite = render_pedestrian(spec, rng)
        side = rng.choice([0.08, 0.9])
        x = int(width * side + rng.uniform(-0.02, 0.05) * width)
        y = int(horizon_y + (height - horizon_y) * (0.1 + 0.75 * depth) - sprite.alpha.shape[0])
        _composite_sprite(reflectance, emissive, sprite.rgb, None, sprite.alpha, x, y)
        box = sprite.body_rect.translated(float(x), float(y)).clipped(width, height)
        if box is not None:
            objects.append(SceneObject(kind="pedestrian", rect=box))

    # Wet-road lamp reflections (dusk/dark only).
    if lighting.taillights_on and rng.random() < config.wet_road_probability:
        all_lights = [light for o in objects for light in o.taillights]
        add_wet_road_reflections(emissive, all_lights, lighting, rng)

    lit = np.clip(reflectance * lighting.ambient + emissive, 0.0, 1.0)
    rgb = apply_sensor_model(lit, lighting, rng)
    return SceneFrame(rgb=rgb, lighting=lighting, objects=objects)


def render_condition_scene(
    condition: LightingCondition,
    seed: int = 0,
    **kwargs,
) -> SceneFrame:
    """Convenience: render a scene under a preset condition."""
    config = SceneConfig(seed=seed, **kwargs)
    return render_scene(config, lighting_for_condition(condition))


# Window-sized crops for the classification corpora (Table I) -------------


def render_vehicle_crop(
    lighting: LightingModel,
    rng: np.random.Generator,
    size: int = 64,
    fill_range: tuple[float, float] = (0.62, 0.8),
    center_jitter: float = 0.05,
) -> np.ndarray:
    """A positive sample: one rear-view vehicle in the window.

    ``fill_range`` bounds the vehicle width as a fraction of the window and
    encodes the corpus viewpoint: UPM-like day data shows distant highway
    vehicles (small fill), SYSU-like dusk data "images are taken from near
    cars" (large fill).  ``center_jitter`` is the horizontal placement
    spread — canonical corpora centre their crops tightly; urban captures
    are looser.
    """
    if size < 16:
        raise DatasetError(f"crop size must be >= 16, got {size}")
    lo, hi = fill_range
    if not 0.2 <= lo <= hi <= 0.95:
        raise DatasetError(f"fill_range must satisfy 0.2 <= lo <= hi <= 0.95, got {fill_range}")
    if not 0.0 <= center_jitter <= 0.3:
        raise DatasetError(f"center_jitter must be in [0, 0.3], got {center_jitter}")
    # Background strip of road around the vehicle.
    reflectance, emissive = render_background(size, size, lighting, rng, horizon=0.3)
    vw = int(size * rng.uniform(lo, hi))
    spec = random_vehicle_spec(rng, vw)
    sprite = render_vehicle(spec, lighting, rng)
    ph, pw = sprite.alpha.shape
    x = int((size - pw) / 2.0 + rng.uniform(-center_jitter, center_jitter) * size)
    y = int(size - ph - rng.uniform(0.0, 0.08) * size)
    _composite_sprite(reflectance, emissive, sprite.rgb, sprite.emissive, sprite.alpha, x, y)
    lit = np.clip(reflectance * lighting.ambient + emissive, 0.0, 1.0)
    return apply_sensor_model(lit, lighting, rng)


def render_negative_crop(
    lighting: LightingModel,
    rng: np.random.Generator,
    size: int = 64,
) -> np.ndarray:
    """A negative sample: road scene clutter without any vehicle.

    Includes the hard negatives that matter per condition: signs and
    buildings during the day; street lamps and oncoming headlights at dusk.
    """
    if size < 16:
        raise DatasetError(f"crop size must be >= 16, got {size}")
    reflectance, emissive = render_background(size, size, lighting, rng, horizon=float(rng.uniform(0.25, 0.55)))
    # Urban night scenes contain *parked, unlit* vehicles; they are
    # negatives for the on-road detectors (no active vehicle ahead).  This
    # hard-negative class teaches the dusk model that body shape without
    # lit lamps is not a target — the mechanism behind the paper's dusk
    # model rejecting almost all (unlit) day vehicles.
    if lighting.taillights_on and rng.random() < 0.35:
        from dataclasses import replace as _replace

        from repro.datasets.vehicles import random_vehicle_spec, render_vehicle

        unlit = _replace(lighting, taillights_on=False, taillight_intensity=0.0)
        spec = random_vehicle_spec(rng, int(size * rng.uniform(0.5, 0.9)))
        sprite = render_vehicle(spec, unlit, rng)
        ph, pw = sprite.alpha.shape
        # Placed exactly like a positive (centered, near the bottom): the
        # only difference between this negative and a positive is the lit
        # lamps, so the classifier cannot fall back on shape or position.
        x = int((size - pw) / 2.0 + rng.uniform(-0.05, 0.05) * size)
        y = int(size - ph - rng.uniform(0.0, 0.08) * size)
        _composite_sprite(reflectance, emissive, sprite.rgb, None, sprite.alpha, x, y)
    # Random clutter: poles, signs, barriers.
    for _ in range(rng.integers(0, 4)):
        cw = int(rng.uniform(0.04, 0.3) * size)
        chh = int(rng.uniform(0.1, 0.5) * size)
        cx = int(rng.uniform(0, size - cw))
        cy = int(rng.uniform(0.1, 0.9) * (size - chh))
        tone = float(rng.uniform(0.1, 0.7))
        fill_rect(reflectance, Rect(float(cx), float(cy), float(cw), float(chh)), (tone, tone, tone))
    if lighting.headlights_on:
        # Night-time negatives are light-rich: oncoming headlight pairs,
        # lamp reflections, isolated glows.  These hard negatives force the
        # dusk/dark classifiers to key on *taillight-specific* structure
        # rather than "any bright blob".
        if rng.random() < 0.7:
            sep = size * rng.uniform(0.15, 0.4)
            patch = render_headlight_pair(
                size,
                size,
                size * float(rng.uniform(0.3, 0.7)),
                size * float(rng.uniform(0.4, 0.75)),
                sep,
                size * 0.02,
                0.9,
                lighting.glow_scale,
            )
            additive_light(emissive, patch, 0, 0)
        for _ in range(rng.integers(0, 3)):
            glow = light_glow(
                size,
                size,
                float(rng.uniform(0, size)),
                float(rng.uniform(0, size * 0.7)),
                max(1.5, size * float(rng.uniform(0.015, 0.05))) * lighting.glow_scale,
                float(rng.uniform(0.4, 0.9)),
            )
            emissive[..., 0] += glow
            emissive[..., 1] += glow * float(rng.uniform(0.6, 0.95))
            emissive[..., 2] += glow * float(rng.uniform(0.3, 0.8))
        emissive = np.clip(emissive, 0.0, 1.0)
    lit = np.clip(reflectance * lighting.ambient + emissive, 0.0, 1.0)
    return apply_sensor_model(lit, lighting, rng)
