"""Procedural pedestrian sprites for the static detection partition.

The static part of the paper's system runs a HOG+SVM pedestrian detector
(after Hemmati et al., DAC'17).  These sprites provide the upright human
silhouette HOG responds to: head, torso, two legs, with small pose jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.imaging.draw import fill_disk, fill_rect
from repro.imaging.geometry import Rect

CLOTHING_TONES = np.array([0.12, 0.2, 0.3, 0.45, 0.6, 0.75])


@dataclass(frozen=True)
class PedestrianSpec:
    """Geometry of one pedestrian sprite.

    Attributes:
        height: Sprite height in pixels; width is ~0.42 of it.
        torso_tone: Clothing reflectance of the torso.
        legs_tone: Clothing reflectance of the legs.
        stride: Leg spread in [0, 1]; 0 = standing, 1 = widest gait.
    """

    height: int
    torso_tone: float
    legs_tone: float
    stride: float = 0.4

    def __post_init__(self) -> None:
        if self.height < 16:
            raise DatasetError(f"pedestrian height must be >= 16 px, got {self.height}")
        if not 0.0 <= self.stride <= 1.0:
            raise DatasetError(f"stride must be in [0, 1], got {self.stride}")

    @property
    def width(self) -> int:
        return max(7, int(round(self.height * 0.42)))


def random_pedestrian_spec(rng: np.random.Generator, height: int) -> PedestrianSpec:
    """Sample a pedestrian with random clothing and gait."""
    return PedestrianSpec(
        height=height,
        torso_tone=float(CLOTHING_TONES[rng.integers(0, len(CLOTHING_TONES))]),
        legs_tone=float(CLOTHING_TONES[rng.integers(0, len(CLOTHING_TONES))]),
        stride=float(rng.uniform(0.1, 0.9)),
    )


@dataclass
class PedestrianSprite:
    """A rendered pedestrian patch (reflectance + alpha)."""

    rgb: np.ndarray
    alpha: np.ndarray
    body_rect: Rect


def render_pedestrian(spec: PedestrianSpec, rng: np.random.Generator) -> PedestrianSprite:
    """Render an upright pedestrian silhouette."""
    h = spec.height
    w = spec.width
    rgb = np.zeros((h, w, 3), dtype=np.float64)
    alpha = np.zeros((h, w), dtype=np.float64)

    skin = 0.55 + float(rng.uniform(-0.1, 0.15))
    head_r = h * 0.085
    cx = w / 2.0
    fill_disk(rgb, cx, head_r + 1, head_r, (skin, skin * 0.9, skin * 0.8))
    fill_disk(alpha, cx, head_r + 1, head_r, 1.0)

    torso = Rect(cx - w * 0.27, head_r * 2.0, w * 0.54, h * 0.42)
    tone = spec.torso_tone
    fill_rect(rgb, torso, (tone, tone * 0.95, tone * 1.05))
    fill_rect(alpha, torso, 1.0)

    # Arms as thin strips beside the torso.
    for side in (-1, 1):
        arm = Rect(cx + side * w * 0.27 - (w * 0.08 if side < 0 else 0), torso.y, w * 0.10, torso.h * 0.9)
        fill_rect(rgb, arm, (tone * 0.9, tone * 0.85, tone * 0.95))
        fill_rect(alpha, arm, 1.0)

    # Legs, spread by the gait phase.
    legs_y = torso.y2
    leg_h = h - legs_y - 1
    spread = spec.stride * w * 0.18
    ltone = spec.legs_tone
    for side in (-1, 1):
        leg = Rect(cx + side * (w * 0.06 + spread) - w * 0.09, legs_y, w * 0.17, leg_h)
        fill_rect(rgb, leg, (ltone, ltone, ltone * 1.08))
        fill_rect(alpha, leg, 1.0)

    return PedestrianSprite(rgb=rgb, alpha=alpha, body_rect=Rect(0.0, 0.0, float(w), float(h)))
