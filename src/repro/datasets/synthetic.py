"""Synthetic stand-ins for the paper's datasets (UPM, SYSU, iROADS).

The real corpora are not redistributable, so these factories procedurally
generate corpora with the *statistics that matter* for each experiment:

* ``make_upm_like``    — day crops (UPM vehicle dataset [15]): sharp
  boundaries, under-car shadow, no lights.
* ``make_sysu_like``   — dusk crops (SYSU nighttime dataset [4]): "images
  are taken from near cars and in the urban area with reasonable lighting" —
  visible bodies *and* lit taillights; a configurable fraction is rendered
  genuinely dark, reproducing the samples the paper excludes to form its
  SYSU *subset*.
* ``make_iroads_like`` — dark full frames (iROADS [18]): near-black scenes
  where taillights are the only reliable cue, with oncoming headlights and
  occasional road lights as distractors.
* ``make_taillight_windows`` — 9x9 binary windows with 4 size/shape classes
  for training the paper's 81-20-8-4 DBN.
* ``make_pedestrian_frames`` — frames with pedestrians for the static
  partition's detector.

Table I of the paper fixes the test-set sizes; the default test splits here
use the same counts (day: 200 pos / 25 neg; dusk: 1063 pos / 752 neg with
100 very dark positives).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.lighting import (
    DARK_LIGHTING,
    LightingCondition,
    sample_dark_lighting,
    sample_day_lighting,
    sample_dusk_lighting,
)
from repro.datasets.samples import ClassificationDataset, DetectionDataset
from repro.datasets.scene import (
    SceneConfig,
    render_negative_crop,
    render_scene,
    render_vehicle_crop,
)
from repro.errors import DatasetError
from repro.rng import make_rng

# Table I test-set sizes, read off the paper's TP/TN/FP/FN columns.
UPM_TEST_POS = 200
UPM_TEST_NEG = 25
SYSU_TEST_POS = 1063
SYSU_TEST_NEG = 752
SYSU_TEST_VERY_DARK_POS = 100


# Viewpoint statistics per corpus: UPM shows distant highway vehicles in
# tightly centred canonical crops; SYSU shows near urban cars with looser
# framing ("images are taken from near cars ... in the urban area").
UPM_FILL_RANGE = (0.40, 0.60)
SYSU_FILL_RANGE = (0.50, 0.90)


def _render_crops(
    lighting_sampler,
    n_pos: int,
    n_neg: int,
    size: int,
    rng: np.random.Generator,
    fill_range: tuple[float, float] = (0.62, 0.8),
    center_jitter: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Render crops, drawing a fresh lighting model per sample."""
    images = []
    labels = []
    for _ in range(n_pos):
        lighting = lighting_sampler(rng)
        images.append(
            render_vehicle_crop(
                lighting, rng, size=size, fill_range=fill_range, center_jitter=center_jitter
            )
        )
        labels.append(1)
    for _ in range(n_neg):
        lighting = lighting_sampler(rng)
        images.append(render_negative_crop(lighting, rng, size=size))
        labels.append(-1)
    if not images:
        raise DatasetError("requested an empty corpus")
    return np.stack(images), np.asarray(labels, dtype=np.int64)


def make_upm_like(
    n_positive: int = UPM_TEST_POS,
    n_negative: int = UPM_TEST_NEG,
    size: int = 64,
    seed: int = 0,
) -> ClassificationDataset:
    """Day-condition classification corpus (UPM stand-in)."""
    rng = make_rng(seed)
    images, labels = _render_crops(
        sample_day_lighting, n_positive, n_negative, size, rng,
        fill_range=UPM_FILL_RANGE, center_jitter=0.03,
    )
    return ClassificationDataset(
        name="upm-like",
        condition=LightingCondition.DAY,
        images=images,
        labels=labels,
    )


def make_sysu_like(
    n_positive: int = SYSU_TEST_POS,
    n_negative: int = SYSU_TEST_NEG,
    n_very_dark_positive: int = SYSU_TEST_VERY_DARK_POS,
    size: int = 64,
    seed: int = 1,
    lighting_t_range: tuple[float, float] = (0.1, 1.0),
) -> ClassificationDataset:
    """Dusk-condition corpus (SYSU stand-in) with a very-dark positive tail.

    The very-dark positives are rendered under the DARK lighting model —
    bodies nearly invisible, taillights dominant — matching the samples the
    paper moves from the dusk test into the dark evaluation.
    """
    if n_very_dark_positive > n_positive:
        raise DatasetError(
            f"very dark positives ({n_very_dark_positive}) exceed positives ({n_positive})"
        )
    rng = make_rng(seed)
    n_dusk_pos = n_positive - n_very_dark_positive

    def dusk_sampler(r):
        return sample_dusk_lighting(r, t_range=lighting_t_range)

    images, labels = _render_crops(
        dusk_sampler, n_dusk_pos, n_negative, size, rng,
        fill_range=SYSU_FILL_RANGE, center_jitter=0.05,
    )
    very_dark = np.zeros(labels.size, dtype=bool)
    if n_very_dark_positive:
        dark_imgs, dark_labels = _render_crops(
            sample_dark_lighting, n_very_dark_positive, 0, size, rng,
            fill_range=SYSU_FILL_RANGE, center_jitter=0.05,
        )
        images = np.concatenate([images, dark_imgs])
        labels = np.concatenate([labels, dark_labels])
        very_dark = np.concatenate([very_dark, np.ones(n_very_dark_positive, dtype=bool)])
    return ClassificationDataset(
        name="sysu-like",
        condition=LightingCondition.DUSK,
        images=images,
        labels=labels,
        very_dark=very_dark,
    )


def make_dark_crops(
    n_positive: int = 100,
    n_negative: int = 100,
    size: int = 64,
    seed: int = 2,
) -> ClassificationDataset:
    """Very dark crop corpus for evaluating the dark pipeline at crop level."""
    rng = make_rng(seed)
    images, labels = _render_crops(
        sample_dark_lighting, n_positive, n_negative, size, rng,
        fill_range=SYSU_FILL_RANGE, center_jitter=0.05,
    )
    return ClassificationDataset(
        name="dark-crops",
        condition=LightingCondition.DARK,
        images=images,
        labels=labels,
        very_dark=np.ones(labels.size, dtype=bool),
    )


def make_iroads_like(
    n_frames: int = 20,
    height: int = 360,
    width: int = 640,
    with_vehicle_fraction: float = 0.7,
    wet_road_probability: float = 0.5,
    seed: int = 3,
) -> DetectionDataset:
    """Dark full-frame detection corpus (iROADS stand-in).

    A fraction of frames contains 1-2 preceding vehicles; all frames may
    contain oncoming headlights and roadside clutter as distractors.
    """
    if not 0.0 <= with_vehicle_fraction <= 1.0:
        raise DatasetError(
            f"with_vehicle_fraction must be in [0, 1], got {with_vehicle_fraction}"
        )
    rng = make_rng(seed)
    frames = []
    for i in range(n_frames):
        has_vehicle = rng.random() < with_vehicle_fraction
        config = SceneConfig(
            height=height,
            width=width,
            n_vehicles=int(rng.integers(1, 3)) if has_vehicle else 0,
            n_pedestrians=0,
            n_oncoming=int(rng.integers(0, 3)),
            # Keep taillight blobs within the 9x9 sliding-DBN window at the
            # 3x-decimated processing resolution (medium-to-far vehicles).
            vehicle_fill=(0.07, 0.17),
            wet_road_probability=wet_road_probability,
            seed=seed * 100003 + i,
        )
        frames.append(render_scene(config, DARK_LIGHTING))
    return DetectionDataset(name="iroads-like", condition=LightingCondition.DARK, frames=frames)


def make_pedestrian_frames(
    n_frames: int = 10,
    height: int = 360,
    width: int = 640,
    condition: LightingCondition = LightingCondition.DAY,
    seed: int = 4,
) -> DetectionDataset:
    """Frames with pedestrians for the static partition's detector."""
    from repro.datasets.lighting import lighting_for_condition

    rng = make_rng(seed)
    frames = []
    for i in range(n_frames):
        config = SceneConfig(
            height=height,
            width=width,
            n_vehicles=int(rng.integers(0, 2)),
            n_pedestrians=int(rng.integers(1, 3)),
            n_oncoming=0,
            seed=seed * 99991 + i,
        )
        frames.append(render_scene(config, lighting_for_condition(condition)))
    return DetectionDataset(name="pedestrian-frames", condition=condition, frames=frames)


# DBN training windows -----------------------------------------------------

# Size/shape classes of the paper's 4-node DBN output layer.
TAILLIGHT_CLASS_NONE = 0  # background / noise / non-compact structure
TAILLIGHT_CLASS_SMALL = 1  # distant taillight, radius ~1 px at 9x9
TAILLIGHT_CLASS_MEDIUM = 2  # mid-range taillight, radius ~2 px
TAILLIGHT_CLASS_LARGE = 3  # near taillight, radius ~3-4 px
TAILLIGHT_CLASS_NAMES = ("none", "small", "medium", "large")

_WINDOW_SIDE = 9


def _disk_window(rng: np.random.Generator, radius: float) -> np.ndarray:
    """A 9x9 binary window with a roughly circular blob of ``radius``."""
    cy = 4.0 + rng.uniform(-1.2, 1.2)
    cx = 4.0 + rng.uniform(-1.2, 1.2)
    ys, xs = np.mgrid[0:_WINDOW_SIDE, 0:_WINDOW_SIDE]
    # Slight ellipticity: real taillights are wider than tall.
    ey = rng.uniform(0.8, 1.25)
    dist = ((ys - cy) * ey) ** 2 + (xs - cx) ** 2
    window = (dist <= radius**2).astype(np.float64)
    # Ragged edge from thresholding noise.
    flip = rng.random((_WINDOW_SIDE, _WINDOW_SIDE)) < 0.02
    window[flip] = 1.0 - window[flip]
    return window


def _background_window(rng: np.random.Generator) -> np.ndarray:
    """Background patterns the sliding DBN must reject."""
    kind = rng.integers(0, 5)
    window = np.zeros((_WINDOW_SIDE, _WINDOW_SIDE), dtype=np.float64)
    if kind == 0:  # empty road
        pass
    elif kind == 1:  # sparse threshold noise
        window = (rng.random((_WINDOW_SIDE, _WINDOW_SIDE)) < rng.uniform(0.02, 0.12)).astype(
            np.float64
        )
    elif kind == 2:  # straight edge of a big glow (headlight bloom boundary)
        edge = rng.integers(1, _WINDOW_SIDE - 1)
        if rng.random() < 0.5:
            window[:, :edge] = 1.0
        else:
            window[:edge, :] = 1.0
    elif kind == 3:  # saturated interior of a huge blob (inside a near headlight)
        window[:, :] = 1.0
    else:  # elongated bar: a wet-road lamp reflection crossing the window
        bar_w = int(rng.integers(1, 5))
        start = int(rng.integers(0, _WINDOW_SIDE - bar_w + 1))
        # Bars may end inside the window (the streak's tail).
        span0 = int(rng.integers(0, 3))
        span1 = int(rng.integers(_WINDOW_SIDE - 2, _WINDOW_SIDE + 1))
        if rng.random() < 0.7:  # reflections are mostly vertical streaks
            window[span0:span1, start : start + bar_w] = 1.0
        else:
            window[start : start + bar_w, span0:span1] = 1.0
    # A little noise on all background kinds.
    flip = rng.random((_WINDOW_SIDE, _WINDOW_SIDE)) < 0.03
    window[flip] = 1.0 - window[flip]
    return window


_CLASS_RADII = {
    TAILLIGHT_CLASS_SMALL: (0.9, 1.5),
    TAILLIGHT_CLASS_MEDIUM: (1.8, 2.6),
    TAILLIGHT_CLASS_LARGE: (3.0, 4.2),
}


def make_taillight_windows(
    n_per_class: int = 250,
    seed: int = 5,
) -> tuple[np.ndarray, np.ndarray]:
    """Training corpus for the taillight DBN.

    The background class is sampled at twice the per-class rate: it spans
    five distinct pattern families (empty, speckle, glow edges, saturated
    interiors, reflection bars) and carries the pipeline's precision.

    Returns:
        (windows, labels): windows is (N, 81) binary float rows (flattened
        9x9, matching the DBN's 81 visible units), labels in {0, 1, 2, 3}.
    """
    if n_per_class < 1:
        raise DatasetError(f"n_per_class must be >= 1, got {n_per_class}")
    rng = make_rng(seed)
    windows: list[np.ndarray] = []
    labels: list[int] = []
    for _ in range(2 * n_per_class):
        windows.append(_background_window(rng))
        labels.append(TAILLIGHT_CLASS_NONE)
    for cls, (r_lo, r_hi) in _CLASS_RADII.items():
        for _ in range(n_per_class):
            windows.append(_disk_window(rng, float(rng.uniform(r_lo, r_hi))))
            labels.append(cls)
    order = rng.permutation(len(windows))
    x = np.stack(windows).reshape(len(windows), -1)[order]
    y = np.asarray(labels, dtype=np.int64)[order]
    return x, y
