"""Labelled sample containers and crop extraction from rendered frames."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.lighting import LightingCondition
from repro.datasets.scene import SceneFrame
from repro.errors import DatasetError
from repro.imaging.geometry import Rect
from repro.imaging.image import crop
from repro.imaging.resize import resize_rgb_bilinear


@dataclass
class ClassificationDataset:
    """A corpus of window crops with binary vehicle labels.

    Mirrors how the paper uses UPM / SYSU: "training images are divided into
    two sets of positive and negative, where positive images are those
    including the vehicles and negative images are those without it".

    Attributes:
        name: Corpus name ("upm-like", "sysu-like", ...).
        condition: Dominant lighting condition of the corpus.
        images: (N, H, W, 3) RGB crops in [0, 1].
        labels: (N,) +1 (vehicle) / -1 (non-vehicle).
        very_dark: (N,) bool; True for samples "taken in very dark
            environment" that the paper excludes to form the SYSU subset.
    """

    name: str
    condition: LightingCondition
    images: np.ndarray
    labels: np.ndarray
    very_dark: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4 or self.images.shape[3] != 3:
            raise DatasetError(f"images must be (N, H, W, 3), got {self.images.shape}")
        if self.labels.shape[0] != self.images.shape[0]:
            raise DatasetError(
                f"{self.images.shape[0]} images but {self.labels.shape[0]} labels"
            )
        if self.very_dark.size == 0:
            self.very_dark = np.zeros(self.images.shape[0], dtype=bool)
        self.very_dark = np.asarray(self.very_dark, dtype=bool)
        if self.very_dark.shape[0] != self.images.shape[0]:
            raise DatasetError("very_dark mask must align with images")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def n_positive(self) -> int:
        return int(np.count_nonzero(self.labels == 1))

    @property
    def n_negative(self) -> int:
        return int(np.count_nonzero(self.labels == -1))

    def subset(self, mask: np.ndarray, name: str | None = None) -> "ClassificationDataset":
        """New dataset keeping only samples where ``mask`` is True."""
        sel = np.asarray(mask, dtype=bool)
        if sel.shape[0] != len(self):
            raise DatasetError("mask must align with the dataset")
        return ClassificationDataset(
            name=name or f"{self.name}-subset",
            condition=self.condition,
            images=self.images[sel],
            labels=self.labels[sel],
            very_dark=self.very_dark[sel],
        )

    def without_very_dark(self) -> "ClassificationDataset":
        """The paper's "subset of SYSU" — very dark samples excluded."""
        return self.subset(~self.very_dark, name=f"{self.name}-no-dark")

    def merged_with(self, other: "ClassificationDataset", name: str) -> "ClassificationDataset":
        """Concatenate two corpora (builds the paper's *combined* train set)."""
        if self.images.shape[1:] != other.images.shape[1:]:
            raise DatasetError(
                f"crop shapes differ: {self.images.shape[1:]} vs {other.images.shape[1:]}"
            )
        return ClassificationDataset(
            name=name,
            condition=self.condition,
            images=np.concatenate([self.images, other.images]),
            labels=np.concatenate([self.labels, other.labels]),
            very_dark=np.concatenate([self.very_dark, other.very_dark]),
        )


@dataclass
class DetectionDataset:
    """A corpus of full frames with ground-truth boxes."""

    name: str
    condition: LightingCondition
    frames: list[SceneFrame]

    def __len__(self) -> int:
        return len(self.frames)


def extract_window_samples(
    frame: SceneFrame,
    window: tuple[int, int],
    n_negative: int,
    rng: np.random.Generator,
    kind: str = "vehicle",
    max_iou: float = 0.2,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Positive and negative window crops from one annotated frame.

    Positives are ground-truth boxes of ``kind`` resized to ``window``;
    negatives are random frame windows overlapping no truth box by more than
    ``max_iou``.

    Returns:
        (positives, negatives) lists of (H, W, 3) crops.
    """
    win_h, win_w = window
    height, width = frame.rgb.shape[:2]
    truths = [o.rect for o in frame.objects if o.kind == kind]
    positives: list[np.ndarray] = []
    for rect in truths:
        grown = rect.expanded(max(2.0, rect.w * 0.08)).clipped(width, height)
        if grown is None or grown.w < 8 or grown.h < 8:
            continue
        patch = crop(frame.rgb, grown)
        positives.append(resize_rgb_bilinear(patch, win_h, win_w))
    negatives: list[np.ndarray] = []
    attempts = 0
    while len(negatives) < n_negative and attempts < n_negative * 30:
        attempts += 1
        scale = float(rng.uniform(0.6, 1.6))
        bw, bh = int(win_w * scale), int(win_h * scale)
        if bw >= width or bh >= height:
            continue
        x = float(rng.integers(0, width - bw))
        y = float(rng.integers(0, height - bh))
        candidate = Rect(x, y, float(bw), float(bh))
        if any(candidate.iou(t) > max_iou for t in truths):
            continue
        negatives.append(resize_rgb_bilinear(crop(frame.rgb, candidate), win_h, win_w))
    return positives, negatives
