"""Temporal drive sequences: consecutive frames with persistent objects.

The single-frame renderer draws an independent scene per seed; sequences
instead evolve a persistent world state — each vehicle keeps its identity,
lane, and depth trajectory across frames — so trackers (the extension the
paper's related work builds on [3]-[5]) can be evaluated with ground-truth
track identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.lighting import LightingModel
from repro.datasets.scene import (
    SceneConfig,
    SceneFrame,
    SceneObject,
    _composite_sprite,
    add_wet_road_reflections,
    apply_sensor_model,
    render_background,
)
from repro.datasets.vehicles import random_vehicle_spec, render_vehicle
from repro.errors import DatasetError
from repro.rng import make_rng


@dataclass
class VehicleTrackState:
    """The persistent state of one vehicle across a sequence.

    Attributes:
        track_id: Stable ground-truth identity.
        lane: Lateral position as a fraction of frame width offset from
            center (-0.13, 0.0, +0.13 are the three lanes).
        depth: 0..1; 1 = nearest.  Drives on-screen size and y position.
        depth_rate: Per-frame depth change (closing or receding).
        brake_frames: Remaining frames of brake-light boost.
        spec_seed: Seed for the vehicle's appearance (kept fixed).
    """

    track_id: int
    lane: float
    depth: float
    depth_rate: float
    brake_frames: int = 0
    spec_seed: int = 0


@dataclass(frozen=True)
class SequenceConfig:
    """Sequence generation parameters."""

    scene: SceneConfig = field(default_factory=SceneConfig)
    n_frames: int = 25
    brake_probability: float = 0.03
    depth_rate_range: tuple[float, float] = (-0.004, 0.004)

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise DatasetError(f"n_frames must be >= 1, got {self.n_frames}")
        if not 0.0 <= self.brake_probability <= 1.0:
            raise DatasetError("brake_probability must be in [0, 1]")


def render_sequence(
    config: SequenceConfig,
    lighting: LightingModel,
) -> list[SceneFrame]:
    """Render a temporally-coherent frame sequence.

    Every frame's vehicle objects carry ``track_id`` in their
    :class:`SceneObject` so tracking metrics have ground truth.  Vehicles
    that recede past the horizon or close past the camera respawn with a
    fresh identity.
    """
    scfg = config.scene
    rng = make_rng(scfg.seed)
    height, width = scfg.height, scfg.width
    horizon_y = int(height * scfg.horizon)
    fill_far, fill_near = scfg.vehicle_fill

    next_id = 0
    states: list[VehicleTrackState] = []
    lanes = (-0.13, 0.0, 0.13)

    def spawn(depth: float | None = None) -> VehicleTrackState:
        nonlocal next_id
        # Pick the least-occupied lane so vehicles do not overlap.
        occupancy = {lane: 0 for lane in lanes}
        for s_ in states:
            occupancy[s_.lane] = occupancy.get(s_.lane, 0) + 1
        lane = min(lanes, key=lambda l: (occupancy[l], rng.random()))
        state = VehicleTrackState(
            track_id=next_id,
            lane=lane,
            depth=float(rng.uniform(0.3, 0.9)) if depth is None else depth,
            depth_rate=float(rng.uniform(*config.depth_rate_range)),
            spec_seed=int(rng.integers(0, 2**31)),
        )
        next_id += 1
        return state

    for _ in range(scfg.n_vehicles):
        states.append(spawn())

    frames: list[SceneFrame] = []
    for _frame_idx in range(config.n_frames):
        # Backgrounds redraw per frame (sensor noise is temporal anyway) but
        # from a frame-local generator so object placement is not consumed.
        bg_rng = make_rng(scfg.seed + 7919)
        reflectance, emissive = render_background(height, width, lighting, bg_rng, scfg.horizon)
        objects: list[SceneObject] = []
        # Far-to-near draw order.
        for state in sorted(states, key=lambda s: s.depth):
            vw = max(10, int(width * (fill_far + (fill_near - fill_far) * state.depth)))
            spec_rng = make_rng(state.spec_seed)
            spec = random_vehicle_spec(spec_rng, vw)
            braking = state.brake_frames > 0
            frame_lighting = lighting
            if braking and lighting.taillights_on:
                from dataclasses import replace

                frame_lighting = replace(
                    lighting,
                    taillight_intensity=min(1.0, lighting.taillight_intensity * 1.4),
                )
            sprite = render_vehicle(spec, frame_lighting, spec_rng)
            road_y = horizon_y + (height - horizon_y) * (0.15 + 0.8 * state.depth)
            cx = width / 2.0 + state.lane * width
            x = int(cx - sprite.alpha.shape[1] / 2.0)
            y = int(road_y - sprite.alpha.shape[0])
            _composite_sprite(reflectance, emissive, sprite.rgb, sprite.emissive, sprite.alpha, x, y)
            body = sprite.body_rect.translated(float(x), float(y)).clipped(width, height)
            if body is not None:
                objects.append(
                    SceneObject(
                        kind="vehicle",
                        rect=body,
                        taillights=[(tx + x, ty + y) for tx, ty in sprite.taillights],
                        track_id=state.track_id,
                    )
                )
        if lighting.taillights_on and rng.random() < scfg.wet_road_probability:
            lights = [light for o in objects for light in o.taillights]
            add_wet_road_reflections(emissive, lights, lighting, rng)
        lit = np.clip(reflectance * lighting.ambient + emissive, 0.0, 1.0)
        rgb = apply_sensor_model(lit, lighting, rng)
        frames.append(SceneFrame(rgb=rgb, lighting=lighting, objects=objects))

        # Advance the world.
        for i, state in enumerate(states):
            state.depth += state.depth_rate
            if state.brake_frames > 0:
                state.brake_frames -= 1
            elif rng.random() < config.brake_probability:
                state.brake_frames = int(rng.integers(3, 9))
            if not 0.12 <= state.depth <= 0.98:
                states[i] = spawn(depth=float(rng.uniform(0.35, 0.6)))
    return frames


def track_ground_truth(frames: list[SceneFrame]) -> dict[int, list[tuple[int, SceneObject]]]:
    """Group vehicle objects by ground-truth track id.

    Returns:
        {track_id: [(frame_index, object), ...]} in frame order.
    """
    tracks: dict[int, list[tuple[int, SceneObject]]] = {}
    for index, frame in enumerate(frames):
        for obj in frame.vehicles:
            if obj.track_id is None:
                continue
            tracks.setdefault(obj.track_id, []).append((index, obj))
    return tracks
