"""Lighting-condition classification with hysteresis and dwell time.

Raw thresholding of a noisy lux signal near a regime boundary would request
a reconfiguration on every sample — and each dusk<->dark transition costs a
20 ms partial reconfiguration (one dropped frame).  The controller therefore
applies (a) hysteresis bands around each boundary and (b) a minimum dwell
time in the current condition before another switch is allowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.lighting import DARK_LUX_UPPER, DUSK_LUX_UPPER, LightingCondition
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ControllerConfig:
    """Hysteresis controller parameters.

    Attributes:
        day_dusk_lux: Boundary between day and dusk (lux).
        dusk_dark_lux: Boundary between dusk and dark (lux).
        hysteresis: Relative band half-width; a boundary at B switches down
            at B/(1+h) and up at B*(1+h).
        min_dwell_s: Minimum seconds in a condition before switching again.
        confirm_samples: Consecutive samples that must agree before a
            switch is taken.  1 (default) switches on the first qualifying
            sample; higher values reject single-sample sensor glitches
            (spikes) at the cost of one sample period of extra latency per
            extra confirmation.
    """

    day_dusk_lux: float = DUSK_LUX_UPPER
    dusk_dark_lux: float = DARK_LUX_UPPER
    hysteresis: float = 0.3
    min_dwell_s: float = 2.0
    confirm_samples: int = 1

    def __post_init__(self) -> None:
        if self.dusk_dark_lux <= 0 or self.day_dusk_lux <= self.dusk_dark_lux:
            raise ConfigurationError(
                "need 0 < dusk_dark_lux < day_dusk_lux, got "
                f"{self.dusk_dark_lux} / {self.day_dusk_lux}"
            )
        if self.hysteresis < 0:
            raise ConfigurationError(f"hysteresis must be >= 0, got {self.hysteresis}")
        if self.min_dwell_s < 0:
            raise ConfigurationError(f"min_dwell_s must be >= 0, got {self.min_dwell_s}")
        if self.confirm_samples < 1:
            raise ConfigurationError(
                f"confirm_samples must be >= 1, got {self.confirm_samples}"
            )


@dataclass(frozen=True)
class ConditionChange:
    """One emitted condition transition."""

    time_s: float
    previous: LightingCondition
    new: LightingCondition
    lux: float


_ORDER = [LightingCondition.DARK, LightingCondition.DUSK, LightingCondition.DAY]


class LightingController:
    """Stateful lux -> condition classifier with hysteresis + dwell."""

    def __init__(
        self,
        config: ControllerConfig | None = None,
        initial: LightingCondition = LightingCondition.DAY,
    ):
        self.config = config or ControllerConfig()
        self.condition = initial
        self.last_change_s = float("-inf")
        self.history: list[ConditionChange] = []
        self._candidate: LightingCondition | None = None
        self._candidate_count = 0

    def _raw_condition(self, lux: float) -> LightingCondition:
        cfg = self.config
        if lux >= cfg.day_dusk_lux:
            return LightingCondition.DAY
        if lux >= cfg.dusk_dark_lux:
            return LightingCondition.DUSK
        return LightingCondition.DARK

    def _reset_confirmation(self) -> None:
        self._candidate = None
        self._candidate_count = 0

    def _boundary(self, lower: LightingCondition) -> float:
        """Boundary lux between ``lower`` and the condition above it."""
        if lower is LightingCondition.DARK:
            return self.config.dusk_dark_lux
        return self.config.day_dusk_lux

    def update(self, time_s: float, lux: float) -> ConditionChange | None:
        """Feed one sensor sample; returns a change event when switching.

        Hysteresis: to move *down* (brighter condition -> darker), the lux
        must fall below boundary/(1+h); to move *up*, above boundary*(1+h).
        Multi-step jumps (day -> dark, e.g. driving into an unlit garage)
        are taken one step per update so every transition is observed.
        """
        if lux < 0:
            raise ConfigurationError(f"lux must be >= 0, got {lux}")
        cfg = self.config
        if time_s - self.last_change_s < cfg.min_dwell_s:
            return None
        current_idx = _ORDER.index(self.condition)
        target = self._raw_condition(lux)
        target_idx = _ORDER.index(target)
        if target_idx == current_idx:
            self._reset_confirmation()
            return None
        h = cfg.hysteresis
        if target_idx < current_idx:
            # Getting darker: cross the lower boundary with margin.
            boundary = self._boundary(_ORDER[current_idx - 1])
            if lux >= boundary / (1.0 + h):
                self._reset_confirmation()
                return None
            new_condition = _ORDER[current_idx - 1]
        else:
            # Getting brighter: cross the upper boundary with margin.
            boundary = self._boundary(_ORDER[current_idx])
            if lux <= boundary * (1.0 + h):
                self._reset_confirmation()
                return None
            new_condition = _ORDER[current_idx + 1]
        if cfg.confirm_samples > 1:
            if self._candidate is new_condition:
                self._candidate_count += 1
            else:
                self._candidate = new_condition
                self._candidate_count = 1
            if self._candidate_count < cfg.confirm_samples:
                return None
        self._reset_confirmation()
        change = ConditionChange(
            time_s=time_s, previous=self.condition, new=new_condition, lux=lux
        )
        self.condition = new_condition
        self.last_change_s = time_s
        self.history.append(change)
        return change

    def run_trace(self, sensor, sample_period_s: float, duration_s: float) -> list[ConditionChange]:
        """Sample a sensor at a fixed period and collect every change."""
        if sample_period_s <= 0 or duration_s <= 0:
            raise ConfigurationError("sample period and duration must be positive")
        changes: list[ConditionChange] = []
        steps = int(duration_s / sample_period_s) + 1
        for i in range(steps):
            t = i * sample_period_s
            change = self.update(t, sensor.read(t))
            if change is not None:
                changes.append(change)
        return changes


class NaiveController(LightingController):
    """Thresholds without hysteresis or dwell — the ablation baseline.

    Demonstrates reconfiguration storms on boundary-hugging illumination.
    """

    def __init__(self, config: ControllerConfig | None = None, initial: LightingCondition = LightingCondition.DAY):
        base = config or ControllerConfig()
        naive = ControllerConfig(
            day_dusk_lux=base.day_dusk_lux,
            dusk_dark_lux=base.dusk_dark_lux,
            hysteresis=0.0,
            min_dwell_s=0.0,
        )
        super().__init__(naive, initial)
