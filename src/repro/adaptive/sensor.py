"""Ambient-light sensing: lux traces and a sampled sensor model.

The paper triggers reconfiguration from "an external signal which indicates
the light intensity changes".  We model that signal as a scripted ambient
illuminance trace (piecewise-linear in log-lux, since perception and sensor
response are logarithmic) sampled by a noisy sensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultSite
from repro.rng import make_rng


@dataclass(frozen=True)
class LuxTrace:
    """Piecewise log-linear ambient illuminance over time.

    Attributes:
        points: (time_s, lux) knots, strictly increasing in time, lux > 0.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ConfigurationError("trace needs at least one point")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("trace times must be strictly increasing")
        if any(lux <= 0 for _, lux in self.points):
            raise ConfigurationError("trace lux values must be positive")

    @property
    def duration(self) -> float:
        return self.points[-1][0]

    def lux_at(self, time_s: float) -> float:
        """Interpolated illuminance; clamped to the end values outside."""
        pts = self.points
        if time_s <= pts[0][0]:
            return pts[0][1]
        if time_s >= pts[-1][0]:
            return pts[-1][1]
        for (t0, l0), (t1, l1) in zip(pts, pts[1:]):
            if t0 <= time_s <= t1:
                alpha = (time_s - t0) / (t1 - t0)
                return 10 ** ((1 - alpha) * math.log10(l0) + alpha * math.log10(l1))
        raise AssertionError("unreachable")


def sunset_trace(duration_s: float = 1800.0) -> LuxTrace:
    """Day -> dusk -> dark over a drive into the evening."""
    return LuxTrace(
        points=(
            (0.0, 30000.0),
            (duration_s * 0.3, 5000.0),
            (duration_s * 0.5, 400.0),
            (duration_s * 0.75, 30.0),
            (duration_s * 0.9, 2.0),
            (duration_s, 0.4),
        )
    )


def tunnel_trace(duration_s: float = 120.0, tunnel_lux: float = 80.0) -> LuxTrace:
    """Daylight drive through a lit tunnel and back out.

    The paper's example: "entering the tunnel is simply handled by the
    transition between day and dusk as the tunnel environment is well
    lighted and is categorized as dusk" — no PR needed.
    """
    return LuxTrace(
        points=(
            (0.0, 30000.0),
            (duration_s * 0.25, 25000.0),
            (duration_s * 0.3, tunnel_lux),
            (duration_s * 0.7, tunnel_lux),
            (duration_s * 0.75, 25000.0),
            (duration_s, 30000.0),
        )
    )


def urban_evening_trace(duration_s: float = 600.0) -> LuxTrace:
    """Dusk city drive dipping into dark side streets and back."""
    return LuxTrace(
        points=(
            (0.0, 120.0),
            (duration_s * 0.2, 40.0),
            (duration_s * 0.35, 1.5),
            (duration_s * 0.55, 25.0),
            (duration_s * 0.7, 0.8),
            (duration_s, 10.0),
        )
    )


def flicker_trace(base_lux: float = 6.2, dip_lux: float = 4.2, period_s: float = 4.0, duration_s: float = 60.0) -> LuxTrace:
    """Illuminance oscillating around the dusk/dark boundary.

    The stress input for the hysteresis ablation: a naive threshold
    controller reconfigures every period; a hysteretic one does not.
    """
    points: list[tuple[float, float]] = [(0.0, base_lux)]
    t = period_s / 2.0
    high = False
    while t < duration_s:
        points.append((t, base_lux if high else dip_lux))
        high = not high
        t += period_s / 2.0
    points.append((duration_s, base_lux))
    return LuxTrace(points=tuple(points))


@dataclass
class LightSensor:
    """Sampled ambient-light sensor with multiplicative noise and dropouts.

    Attributes:
        trace: Ground-truth illuminance profile.
        noise_rel: Relative (multiplicative, log-normal) noise sigma.
        dropout_probability: Chance a sample is lost (returns the last
            reading — sensors hold their register on a missed conversion).
        seed: RNG seed.
        faults: Optional fault plan; SENSOR_DROPOUT windows hold the last
            register, SENSOR_SPIKE windows return the spec's magnitude lux.
    """

    trace: LuxTrace
    noise_rel: float = 0.05
    dropout_probability: float = 0.0
    seed: int = 0
    faults: FaultPlan | None = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _last: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.noise_rel < 0:
            raise ConfigurationError(f"noise_rel must be >= 0, got {self.noise_rel}")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ConfigurationError(
                f"dropout_probability must be in [0, 1), got {self.dropout_probability}"
            )
        self._rng = make_rng(self.seed)
        self._last = self.trace.lux_at(0.0)

    def read(self, time_s: float) -> float:
        """One noisy sensor sample at ``time_s`` (lux)."""
        if self.faults is not None:
            if self.faults.fire(FaultSite.SENSOR_DROPOUT, "sensor", time_s) is not None:
                return self._last
            spike = self.faults.fire(FaultSite.SENSOR_SPIKE, "sensor", time_s)
            if spike is not None:
                # A glitched conversion: reported, but the held register is
                # not poisoned, so recovery is immediate.
                return float(spike.magnitude)
        if self.dropout_probability and self._rng.random() < self.dropout_probability:
            return self._last
        truth = self.trace.lux_at(time_s)
        if self.noise_rel > 0:
            truth *= float(np.exp(self._rng.normal(0.0, self.noise_rel)))
        self._last = truth
        return truth
