"""Reconfiguration policy: lighting condition -> hardware configuration.

The paper generates *two* partial configurations for the reconfigurable
vehicle-detection partition: one covering day and dusk (the same HOG+SVM
pipeline; "implemented in the same way but with different versions of the
trained model which are stored in two block RAM"), and one for dark.

Consequently:

* day <-> dusk is a *model swap* — selecting the other block RAM — with no
  partial reconfiguration;
* dusk <-> dark (either direction) requires a partial reconfiguration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.datasets.lighting import LightingCondition


class VehicleConfigurationId(enum.Enum):
    """Identifiers of the two partial bitstreams of the vehicle partition."""

    DAY_DUSK = "day_dusk"
    DARK = "dark"


class SwitchKind(enum.Enum):
    """What a condition change requires from the hardware."""

    NONE = "none"
    MODEL_SWAP = "model_swap"  # BRAM model select, zero downtime
    PARTIAL_RECONFIG = "partial_reconfig"  # bitstream load through the PR path


CONFIG_FOR_CONDITION = {
    LightingCondition.DAY: VehicleConfigurationId.DAY_DUSK,
    LightingCondition.DUSK: VehicleConfigurationId.DAY_DUSK,
    LightingCondition.DARK: VehicleConfigurationId.DARK,
}


@dataclass(frozen=True)
class SwitchPlan:
    """The action needed to serve a new lighting condition."""

    kind: SwitchKind
    target_configuration: VehicleConfigurationId
    target_condition: LightingCondition


def plan_switch(
    current_condition: LightingCondition,
    new_condition: LightingCondition,
) -> SwitchPlan:
    """Decide between no-op, model swap, and partial reconfiguration."""
    target = CONFIG_FOR_CONDITION[new_condition]
    if new_condition is current_condition:
        kind = SwitchKind.NONE
    elif CONFIG_FOR_CONDITION[current_condition] is target:
        kind = SwitchKind.MODEL_SWAP
    else:
        kind = SwitchKind.PARTIAL_RECONFIG
    return SwitchPlan(kind=kind, target_configuration=target, target_condition=new_condition)
