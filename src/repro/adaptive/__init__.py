"""Adaptation substrate: light sensing, hysteresis control, switch policy."""

from repro.adaptive.controller import (
    ConditionChange,
    ControllerConfig,
    LightingController,
    NaiveController,
)
from repro.adaptive.policy import (
    CONFIG_FOR_CONDITION,
    SwitchKind,
    SwitchPlan,
    VehicleConfigurationId,
    plan_switch,
)
from repro.adaptive.sensor import (
    LightSensor,
    LuxTrace,
    flicker_trace,
    sunset_trace,
    tunnel_trace,
    urban_evening_trace,
)

__all__ = [
    "CONFIG_FOR_CONDITION",
    "ConditionChange",
    "ControllerConfig",
    "LightSensor",
    "LightingController",
    "LuxTrace",
    "NaiveController",
    "SwitchKind",
    "SwitchPlan",
    "VehicleConfigurationId",
    "flicker_trace",
    "plan_switch",
    "sunset_trace",
    "tunnel_trace",
    "urban_evening_trace",
]
