"""Discrete-event simulation kernel.

A minimal, deterministic event kernel: events are (time, sequence, callback)
triples in a heap; ties in time break by scheduling order, so runs are fully
reproducible.  Components schedule work with :meth:`Simulator.schedule` and
communicate through plain Python calls at event time.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.telemetry.spans import NullTracer, Tracer


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle to a scheduled event; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Mark the event so the kernel skips it."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Scheduled firing time (simulator seconds)."""
        return self._event.time


class Simulator:
    """Deterministic discrete-event simulator; time unit is the second."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = 0
        self.now = 0.0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay_s: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at ``now + delay_s`` (delay_s >= 0 seconds)."""
        if delay_s < 0:
            raise SimulationError(f"cannot schedule into the past (delay_s={delay_s})")
        event = _Event(time=self.now + delay_s, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule at an absolute time (>= now)."""
        return self.schedule(time - self.now, callback)

    @property
    def pending(self) -> int:
        """Scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-15:
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = max(self.now, event.time)
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (or the safety cap trips)."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            count = 0
            while self.step():
                count += 1
                if count > max_events:
                    raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        finally:
            self._running = False

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run events with timestamps <= ``time``; advances now to ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot run backwards to {time} (now={self.now})")
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run_until())")
        self._running = True
        try:
            count = 0
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if head.time > time:
                    break
                self.step()
                count += 1
                if count > max_events:
                    raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
            self.now = max(self.now, time)
        finally:
            self._running = False


@dataclass
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    source: str
    message: str


#: The declared vocabulary of typed trace events.  ``Trace.emit`` rejects
#: kinds outside this set and the ``event-vocabulary`` lint rule enforces
#: it statically, so every consumer (summaries, exporter filters,
#: acceptance tests) can rely on the names below being exhaustive.
EVENT_KINDS: frozenset[str] = frozenset(
    {
        "dma.start",
        "dma.done",
        "dma.stall",
        "dma.error",
        "pr.start",
        "pr.done",
        "pr.stall",
        "pr.timeout",
        "soc.degrade",
        "frame.dropped",
        "partition.down",
        "partition.up",
        "model.swap",
    }
)


class Trace:
    """An event trace shared by SoC components.

    Two capture modes:

    * unbounded (default) — every record is kept, as the figure renderers
      expect for short runs;
    * ring buffer (``max_records``) — only the newest ``max_records``
      survive, with ``dropped`` counting evictions.  Long drives attach
      their simulator traces in this mode so a multi-hour drive cannot
      grow the trace without bound.

    A :class:`~repro.telemetry.spans.Tracer` may ride along: components
    that call :meth:`emit` then produce *typed* telemetry events (kind +
    attributes) alongside the human-readable record, so the same call site
    feeds both ``python -m repro fig7`` and a Perfetto dump.

    :attr:`listeners` receive every typed event as ``(time, source, kind,
    attrs)``; the runtime monitor subscribes here to fold SoC events into
    frame snapshots.  The list is empty by default, so unobserved traces
    pay one truthiness check per emit and nothing else.
    """

    def __init__(
        self,
        max_records: int | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise SimulationError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.records: deque[TraceRecord] | list[TraceRecord]
        if max_records is not None:
            self.records = deque(maxlen=max_records)
        else:
            self.records = []
        self.dropped = 0
        self.logged = 0
        self.tracer = tracer if tracer is not None else NullTracer()
        self.listeners: list[Callable[[float, str, str, dict[str, Any]], None]] = []

    def log(self, time: float, source: str, message: str) -> None:
        """Append one human-readable record (evicting under ring-buffer mode)."""
        if self.max_records is not None and len(self.records) == self.max_records:
            self.dropped += 1
        self.records.append(TraceRecord(time=time, source=source, message=message))
        self.logged += 1

    def emit(self, time: float, source: str, kind: str, message: str, **attrs: Any) -> None:
        """Typed event: a human-readable record plus a telemetry event.

        ``kind`` is the structured event name ("dma.start", "pr.done",
        ...) and must come from :data:`EVENT_KINDS`; ``attrs`` are its
        typed attributes.  With the default no-op tracer this is exactly
        :meth:`log`.
        """
        if kind not in EVENT_KINDS:
            raise SimulationError(
                f"emit kind {kind!r} is not in the declared event vocabulary; "
                "add it to repro.zynq.events.EVENT_KINDS first"
            )
        self.log(time, source, message)
        if self.tracer.enabled:
            self.tracer.event(kind, time_s=time, source=source, **attrs)
        if self.listeners:
            for listener in list(self.listeners):
                listener(time, source, kind, attrs)

    def from_source(self, source: str) -> list[TraceRecord]:
        """Records logged by one component."""
        return [r for r in self.records if r.source == source]

    def __len__(self) -> int:
        return len(self.records)
