"""AXI DMA engine model (MM2S / S2MM).

A DMA engine is programmed by the PS through its AXI-Lite registers with a
descriptor (source/size) and then moves data over its :class:`BusLink`,
raising its interrupt line on completion — exactly the Fig. 6 flow:
"Processing system initiates the DMA data transfer by writing to its
registers and defining the size of data."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import DmaError
from repro.faults.plan import FaultPlan, FaultSite
from repro.zynq.bus import BusLink
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController

# Register-programming cost: a handful of AXI-Lite writes from the PS.
DMA_SETUP_TIME_S = 1.0e-6


class DmaState(enum.Enum):
    """Lifecycle of one DMA engine."""

    IDLE = "idle"
    BUSY = "busy"
    ERROR = "error"


@dataclass(frozen=True)
class DmaDescriptor:
    """One programmed transfer."""

    n_bytes: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_bytes <= 0:
            raise DmaError(f"transfer size must be positive, got {self.n_bytes}")


class DmaEngine:
    """One AXI DMA channel bound to a link and an interrupt line."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        link: BusLink,
        interrupts: InterruptController,
        trace: Trace | None = None,
        burst_beats: int | None = None,
        faults: FaultPlan | None = None,
    ):
        self.name = name
        self.sim = sim
        self.link = link
        self.interrupts = interrupts
        self.trace = trace
        self.burst_beats = burst_beats
        self.faults = faults
        self.state = DmaState.IDLE
        self.transfers_completed = 0
        self.bytes_transferred = 0
        self.irq_line = f"{name}.done"
        self.error_line = f"{name}.error"
        interrupts.register(self.irq_line)
        interrupts.register(self.error_line)
        self._inject_error_next = False

    def inject_error(self) -> None:
        """Make the next transfer abort with a DMA error (failure testing)."""
        self._inject_error_next = True

    def start(
        self,
        descriptor: DmaDescriptor,
        on_done: Callable[[], None] | None = None,
        on_error: Callable[[], None] | None = None,
    ) -> None:
        """Program and start a transfer; raises on a busy engine.

        Completion raises the engine's interrupt line and calls ``on_done``;
        an aborted transfer raises the error line and calls ``on_error``.
        """
        if self.state is DmaState.BUSY:
            raise DmaError(f"{self.name}: programmed while busy")
        if self.state is DmaState.ERROR:
            raise DmaError(f"{self.name}: in error state; reset() first")
        self.state = DmaState.BUSY
        span = None
        if self.trace is not None:
            if self.trace.tracer.enabled:
                span = self.trace.tracer.begin(
                    "dma.transfer",
                    engine=self.name,
                    label=descriptor.label,
                    bytes=descriptor.n_bytes,
                    link=self.link.spec.name,
                )
            self.trace.emit(
                self.sim.now,
                self.name,
                "dma.start",
                f"start {descriptor.label} ({descriptor.n_bytes} B)",
                label=descriptor.label,
                bytes=descriptor.n_bytes,
            )
        inject = self._inject_error_next
        self._inject_error_next = False
        stall_s = 0.0
        if self.faults is not None:
            if self.faults.fire(FaultSite.DMA_ERROR, self.name, self.sim.now, descriptor.label):
                inject = True
            stall = self.faults.fire(
                FaultSite.DMA_STALL, self.name, self.sim.now, descriptor.label
            )
            if stall is not None:
                stall_s = stall.magnitude
                if span is not None:
                    span.add_event("dma.stall", self.sim.now, stall_ms=stall_s * 1e3)
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        self.name,
                        "dma.stall",
                        f"stall {stall_s * 1e3:.1f} ms on {descriptor.label}",
                        label=descriptor.label,
                        stall_ms=stall_s * 1e3,
                    )

        def after_setup() -> None:
            if inject:
                self.state = DmaState.ERROR
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        self.name,
                        "dma.error",
                        f"ERROR on {descriptor.label}",
                        label=descriptor.label,
                    )
                    self.trace.tracer.end(span, outcome="error")
                self.interrupts.raise_irq(self.error_line)
                if on_error is not None:
                    on_error()
                return
            self.link.request(
                descriptor.n_bytes,
                on_done=complete,
                burst_beats=self.burst_beats,
                label=f"{self.name}:{descriptor.label}",
            )

        def complete() -> None:
            self.state = DmaState.IDLE
            self.transfers_completed += 1
            self.bytes_transferred += descriptor.n_bytes
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    self.name,
                    "dma.done",
                    f"done {descriptor.label}",
                    label=descriptor.label,
                    bytes=descriptor.n_bytes,
                )
                self.trace.tracer.end(span, outcome="ok")
            self.interrupts.raise_irq(self.irq_line)
            if on_done is not None:
                on_done()

        self.sim.schedule(DMA_SETUP_TIME_S + stall_s, after_setup)

    def reset(self) -> None:
        """Clear an error state (soft reset through AXI-Lite)."""
        if self.state is DmaState.BUSY:
            raise DmaError(f"{self.name}: cannot reset a busy engine")
        self.state = DmaState.IDLE
