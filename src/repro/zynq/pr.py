"""Partial-reconfiguration controllers: PCAP, AXI HWICAP, ZyCAP, and ours.

Four ways to push a partial bitstream into the configuration engine, each
with the data path the literature describes (Section IV-A of the paper):

* :class:`PcapController` — the stock flow: PS DMA moves the bitstream from
  PS DDR through the *central interconnect* to the PCAP bridge.  Ideal
  400 MB/s, realised ~145 MB/s.
* :class:`HwIcapController` — Xilinx AXI HWICAP: the PS pushes single
  AXI-Lite words through a GP port, ~19 MB/s.
* :class:`ZycapController` — ZyCAP [19]: a PL DMA pulls from PS DDR over an
  HP port into ICAP, ~382 MB/s, but occupies an HP port.
* :class:`PaperPrController` — the paper's contribution: bitstreams staged
  in *PL-side DDR*, a PL DMA streams them through the ICAP manager into
  ICAPE2; ~390 MB/s, PS interconnect and HP ports untouched.

All controllers share :class:`ReconfigurationManager` semantics: integrity
check, busy-rejection, completion interrupt, and a measured-throughput
report (the paper measured with the ARM performance counters and an ILA; we
read the simulator clock).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReconfigurationError
from repro.faults.plan import FaultPlan, FaultSite
from repro.zynq.bitstream import BitstreamRepository, PartialBitstream
from repro.zynq.bus import (
    GP_PORT_LITE,
    HP_PORT,
    ICAP_PORT,
    PL_DDR_PORT,
    PS_CENTRAL_INTERCONNECT,
    BusLink,
    LinkSpec,
    Path,
)
from repro.telemetry.metrics import throughput_mbs
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController


class PrState(enum.Enum):
    """Lifecycle of a PR controller."""

    IDLE = "idle"
    RECONFIGURING = "reconfiguring"


@dataclass
class ReconfigReport:
    """Outcome of one partial reconfiguration."""

    controller: str
    bitstream: str
    size_bytes: int
    start_s: float
    end_s: float = 0.0
    ok: bool = False
    error: str = ""
    attempt: int = 1
    timed_out: bool = False

    @property
    def duration_s(self) -> float:
        """Wall time of the attempt on the simulator clock."""
        return self.end_s - self.start_s

    @property
    def throughput_mb_s(self) -> float:
        """Measured MB/s (decimal MB, as reported in the paper)."""
        return throughput_mbs(self.size_bytes, self.duration_s)

    def to_dict(self) -> dict:
        """Plain-data form for bundles, exports, and summaries."""
        return {
            "controller": self.controller,
            "bitstream": self.bitstream,
            "size_bytes": self.size_bytes,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": self.duration_s * 1e3,
            "throughput_mb_s": self.throughput_mb_s,
            "ok": self.ok,
            "error": self.error,
            "attempt": self.attempt,
            "timed_out": self.timed_out,
        }


class BasePrController:
    """Shared PR controller machinery over a configuration data path."""

    #: Name used in traces and reports; subclasses override.
    name = "base-pr"

    def __init__(
        self,
        sim: Simulator,
        interrupts: InterruptController,
        repository: BitstreamRepository,
        trace: Trace | None = None,
        setup_time_s: float = 2.0e-6,
        faults: FaultPlan | None = None,
        timeout_s: float | None = None,
    ):
        if timeout_s is not None and timeout_s <= 0:
            raise ReconfigurationError(f"timeout_s must be positive, got {timeout_s}")
        self.sim = sim
        self.interrupts = interrupts
        self.repository = repository
        self.trace = trace
        self.setup_time_s = setup_time_s
        self.faults = faults
        self.timeout_s = timeout_s
        self.state = PrState.IDLE
        self.irq_line = f"{self.name}.reconfig_done"
        self.error_line = f"{self.name}.reconfig_error"
        interrupts.register(self.irq_line)
        interrupts.register(self.error_line)
        self.reports: list[ReconfigReport] = []
        self.active_configuration: str | None = None

    # Data path; subclasses provide the hop chain.
    def _path(self) -> Path:
        raise NotImplementedError

    def occupies_hp_port(self) -> bool:
        """True when this controller's transfer contends with video DMA."""
        return False

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds this controller needs to move ``n_bytes`` to ICAP."""
        return self._path().transfer_time(n_bytes)

    def effective_bandwidth(self) -> float:
        """Sustained configuration bandwidth in bytes/s."""
        return self._path().effective_bandwidth()

    def reconfigure(
        self,
        name: str,
        on_done: Callable[[ReconfigReport], None] | None = None,
    ) -> ReconfigReport:
        """Start loading the named bitstream; returns the (live) report.

        Raises :class:`ReconfigurationError` when already reconfiguring or
        when the bitstream fails its integrity check.
        """
        if self.state is PrState.RECONFIGURING:
            raise ReconfigurationError(f"{self.name}: reconfiguration already in progress")
        bitstream = self.repository.get(name)
        if self.faults is not None and self.faults.fire(
            FaultSite.BITSTREAM_CORRUPT, name, self.sim.now
        ):
            bitstream.corrupt_payload()
        report = ReconfigReport(
            controller=self.name,
            bitstream=name,
            size_bytes=bitstream.size_bytes,
            start_s=self.sim.now,
        )
        self.reports.append(report)
        if not bitstream.verify():
            report.end_s = self.sim.now
            report.error = "integrity check failed"
            raise ReconfigurationError(f"{self.name}: bitstream {name!r} failed integrity check")
        self.state = PrState.RECONFIGURING
        span = None
        if self.trace is not None:
            if self.trace.tracer.enabled:
                span = self.trace.tracer.begin(
                    "pr.reconfigure",
                    controller=self.name,
                    bitstream=name,
                    bytes=bitstream.size_bytes,
                    attempt=report.attempt,
                )
            self.trace.emit(
                self.sim.now,
                self.name,
                "pr.start",
                f"reconfigure -> {name} start",
                bitstream=name,
                bytes=bitstream.size_bytes,
            )
        duration = self.transfer_time(bitstream.size_bytes)
        if self.faults is not None:
            stall = self.faults.fire(FaultSite.PR_STALL, name, self.sim.now)
            if stall is not None:
                duration += stall.magnitude
                if span is not None:
                    span.add_event("pr.stall", self.sim.now, stall_ms=stall.magnitude * 1e3)
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        self.name,
                        "pr.stall",
                        f"ICAP stream stalled {stall.magnitude * 1e3:.1f} ms",
                        bitstream=name,
                        stall_ms=stall.magnitude * 1e3,
                    )

        def complete() -> None:
            if report.timed_out:
                return
            self.state = PrState.IDLE
            self.active_configuration = name
            report.end_s = self.sim.now
            report.ok = True
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    self.name,
                    "pr.done",
                    f"reconfigure -> {name} done ({report.throughput_mb_s:.0f} MB/s)",
                    bitstream=name,
                    duration_ms=report.duration_s * 1e3,
                    throughput_mb_s=report.throughput_mb_s,
                )
                self.trace.tracer.end(
                    span, outcome="ok", throughput_mb_s=report.throughput_mb_s
                )
            self.interrupts.raise_irq(self.irq_line)
            if on_done is not None:
                on_done(report)

        handle = self.sim.schedule(self.setup_time_s + duration, complete)

        if self.timeout_s is not None:

            def watchdog() -> None:
                if report.ok or report.timed_out:
                    return
                handle.cancel()
                self.state = PrState.IDLE
                report.end_s = self.sim.now
                report.error = "watchdog timeout"
                report.timed_out = True
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        self.name,
                        "pr.timeout",
                        f"reconfigure -> {name} TIMED OUT",
                        bitstream=name,
                    )
                    self.trace.tracer.end(span, outcome="timeout")
                self.interrupts.raise_irq(self.error_line)
                if on_done is not None:
                    on_done(report)

            self.sim.schedule(self.setup_time_s + self.timeout_s, watchdog)
        return report


class PcapController(BasePrController):
    """Stock PCAP flow through the PS central interconnect (~145 MB/s)."""

    name = "pcap"

    def _path(self) -> Path:
        return Path(self.name, [PS_CENTRAL_INTERCONNECT, ICAP_PORT])


class HwIcapController(BasePrController):
    """Xilinx AXI HWICAP over a GP port (~19 MB/s)."""

    name = "hwicap"

    def _path(self) -> Path:
        return Path(self.name, [GP_PORT_LITE, ICAP_PORT])


class ZycapController(BasePrController):
    """ZyCAP [19]: PL DMA from PS DDR over an HP port (~382 MB/s)."""

    name = "zycap"

    def _path(self) -> Path:
        return Path(self.name, [HP_PORT, ICAP_PORT])

    def occupies_hp_port(self) -> bool:
        """ZyCAP streams over an HP port, contending with video DMA."""
        return True


class PaperPrController(BasePrController):
    """The paper's controller: PL DDR -> DMA -> ICAP manager -> ICAPE2.

    ~390 MB/s measured; "eliminate[s] any delay that could be imposed by
    the PS and leave[s] the AXI HP port of PS for other high speed data
    transfers".
    """

    name = "paper-pr"

    def _path(self) -> Path:
        return Path(self.name, [PL_DDR_PORT, ICAP_PORT])


ALL_CONTROLLERS: tuple[type[BasePrController], ...] = (
    PcapController,
    HwIcapController,
    ZycapController,
    PaperPrController,
)

# The port ceiling both PCAP and ICAP share (32 bit @ 100 MHz).
THEORETICAL_MAX_MB_S = ICAP_PORT.peak_bandwidth / 1e6
