"""The Fig. 6 system: PS + PL, HP/GP ports, DMAs, detectors, PR controller.

Builds the paper's block diagram in the discrete-event simulator:

* pedestrian detection (static partition) fed by an AXI DMA pair on HP0;
* vehicle detection (reconfigurable partition) fed by DMA pairs on HP1/HP2;
* a PR controller (the paper's PL-DDR one by default, or any of the
  comparison controllers) driving the vehicle partition's bitstreams;
* an interrupt controller collecting the done/error lines.

Frames are modelled as byte payloads (HDTV YCbCr 4:2:2 = ~4.15 MB) moving
through shared :class:`BusLink` s, so port contention — the reason the
paper keeps reconfiguration traffic off the HP ports — falls out of the
queueing rather than being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReconfigurationError, SimulationError
from repro.faults.plan import DegradationEvent, FaultPlan
from repro.hw.timing import HDTV_TIMING, VideoTiming
from repro.telemetry.session import NULL_TELEMETRY, Telemetry
from repro.zynq.bitstream import BitstreamRepository, paper_bitstreams
from repro.zynq.bus import HP_PORT_VIDEO, BusLink, LinkSpec
from repro.zynq.dma import DmaDescriptor, DmaEngine, DmaState
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController
from repro.zynq.pr import BasePrController, PaperPrController, ReconfigReport

# Ring-buffer bound for the simulator-attached trace: generous for every
# paper artefact (a 120 s drive logs ~50 k records) yet bounded, so
# arbitrarily long drives cannot grow the trace without limit.
TRACE_MAX_RECORDS = 200_000

# HDTV frame payload: 1920 x 1080 x 2 B (YCbCr 4:2:2).
FRAME_BYTES = HDTV_TIMING.width * HDTV_TIMING.height * 2
# Detection result payload: a few hundred boxes worth of records.
RESULT_BYTES = 4 * 1024


@dataclass
class HwDetector:
    """A detection accelerator as seen by the system: a frame-rate sink.

    Attributes:
        name: "pedestrian" or "vehicle".
        processing_time_s: Frame latency of the accelerator pipeline.
        available: False while its partition is being reconfigured.
        configuration: Active configuration name (vehicle partition only).
    """

    name: str
    processing_time_s: float
    available: bool = True
    configuration: str | None = None
    frames_processed: int = 0
    frames_dropped: int = 0
    busy: bool = False


class ZynqSoC:
    """The paper's implemented system (Fig. 6) in the event simulator."""

    def __init__(
        self,
        controller_cls: type[BasePrController] = PaperPrController,
        repository: BitstreamRepository | None = None,
        vehicle_processing_s: float = 0.0198,
        pedestrian_processing_s: float = 0.0198,
        timing: VideoTiming = HDTV_TIMING,
        faults: FaultPlan | None = None,
        pr_timeout_s: float | None = None,
        telemetry: Telemetry | None = None,
        trace_max_records: int | None = TRACE_MAX_RECORDS,
    ):
        self.sim = Simulator()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry.bind_clock(lambda: self.sim.now)
        self.trace = Trace(max_records=trace_max_records, tracer=self.telemetry.tracer)
        self.interrupts = InterruptController(self.sim, tracer=self.telemetry.tracer)
        self.timing = timing
        self.repository = repository or paper_bitstreams()
        self.faults = faults
        # Degradation actions (driver-level recoveries) are reported here;
        # the system level subscribes to fold them into its drive report.
        self.on_degradation: Callable[[DegradationEvent], None] | None = None

        # HP-port links (shared, FIFO-arbitrated).
        self.hp0 = BusLink(self.sim, LinkSpec(**{**HP_PORT_VIDEO.__dict__, "name": "hp0"}))
        self.hp1 = BusLink(self.sim, LinkSpec(**{**HP_PORT_VIDEO.__dict__, "name": "hp1"}))
        self.hp2 = BusLink(self.sim, LinkSpec(**{**HP_PORT_VIDEO.__dict__, "name": "hp2"}))

        # DMA engines, as in Fig. 6 (MM2S feeds a detector, S2MM returns
        # results).  Only the vehicle-side engines see the fault plan: the
        # static pedestrian partition sits on a protected path — the paper's
        # safety argument — so injected faults can never reach it.
        self.ped_in_dma = DmaEngine("dma-ped-mm2s", self.sim, self.hp0, self.interrupts, self.trace)
        self.ped_out_dma = DmaEngine("dma-ped-s2mm", self.sim, self.hp0, self.interrupts, self.trace)
        self.veh_in_dma = DmaEngine(
            "dma-veh-mm2s", self.sim, self.hp1, self.interrupts, self.trace, faults=faults
        )
        self.veh_out_dma = DmaEngine(
            "dma-veh-s2mm", self.sim, self.hp2, self.interrupts, self.trace, faults=faults
        )

        # Detectors.
        self.pedestrian = HwDetector("pedestrian", processing_time_s=pedestrian_processing_s)
        self.vehicle = HwDetector(
            "vehicle", processing_time_s=vehicle_processing_s, configuration="day_dusk"
        )
        # BRAM-resident SVM model currently selected by the day_dusk image.
        self.vehicle_model = "day"

        # PR controller for the vehicle partition.
        self.pr = controller_cls(
            self.sim,
            self.interrupts,
            self.repository,
            self.trace,
            faults=faults,
            timeout_s=pr_timeout_s,
        )
        self.pr.active_configuration = self.vehicle.configuration
        self.reconfigurations: list[ReconfigReport] = []

    def _degrade(self, kind: str, detail: str = "") -> None:
        self.trace.emit(
            self.sim.now,
            "soc",
            "soc.degrade",
            f"degrade {kind}: {detail}" if detail else f"degrade {kind}",
            action=kind,
            detail=detail,
        )
        self.telemetry.counter("degradations_total", kind=kind).inc()
        if self.on_degradation is not None:
            self.on_degradation(DegradationEvent(time_s=self.sim.now, kind=kind, detail=detail))

    # Frame processing -------------------------------------------------------

    def _detector_and_dmas(self, which: str) -> tuple[HwDetector, DmaEngine, DmaEngine]:
        if which == "pedestrian":
            return self.pedestrian, self.ped_in_dma, self.ped_out_dma
        if which == "vehicle":
            return self.vehicle, self.veh_in_dma, self.veh_out_dma
        raise SimulationError(f"unknown detector {which!r}")

    def submit_frame(
        self,
        which: str,
        on_result: Callable[[], None] | None = None,
        frame_bytes: int = FRAME_BYTES,
    ) -> bool:
        """Push one frame at a detector; returns False when it is dropped.

        A frame is dropped when the detector's partition is reconfiguring,
        or when the previous frame's *input transfer* has not finished (the
        accelerators are streaming pipelines, so processing of frame N
        overlaps the input of frame N+1; only the ingress DMA serialises).
        """
        detector, in_dma, out_dma = self._detector_and_dmas(which)
        if not detector.available or detector.busy:
            detector.frames_dropped += 1
            self.trace.emit(
                self.sim.now,
                detector.name,
                "frame.dropped",
                "frame dropped",
                detector=detector.name,
                reason="reconfiguring" if not detector.available else "ingress-busy",
            )
            self.telemetry.counter("frames_dropped", detector=detector.name).inc()
            return False
        detector.busy = True

        def after_input() -> None:
            detector.busy = False
            self.sim.schedule(detector.processing_time_s, after_processing)

        def after_processing() -> None:
            if out_dma.state is not DmaState.IDLE:
                # Egress still tied up by the previous result (a stalled or
                # errored transfer): the new result has nowhere to go, so the
                # driver drops it rather than reprogramming a busy engine.
                detector.frames_dropped += 1
                self._degrade(
                    "result-backpressure", f"{out_dma.name} busy; {which} result lost"
                )
                return
            out_dma.start(
                DmaDescriptor(RESULT_BYTES, label=f"{which}-result"),
                on_done=finish,
                on_error=output_failed,
            )

        def finish() -> None:
            detector.frames_processed += 1
            self.telemetry.counter("frames_processed", detector=detector.name).inc()
            if on_result is not None:
                on_result()

        def input_failed() -> None:
            # The ingress DMA aborted: the driver soft-resets the engine
            # through AXI-Lite so the stream resumes on the next frame.
            detector.busy = False
            detector.frames_dropped += 1
            in_dma.reset()
            self._degrade("dma-reset", f"{in_dma.name} after aborted {which} frame")

        def output_failed() -> None:
            # The result transfer aborted: the frame was processed but its
            # detections never reached the PS — count it dropped.
            detector.frames_dropped += 1
            out_dma.reset()
            self._degrade("dma-reset", f"{out_dma.name} after lost {which} result")

        in_dma.start(
            DmaDescriptor(frame_bytes, label=f"{which}-frame"),
            on_done=after_input,
            on_error=input_failed,
        )
        return True

    # Reconfiguration ---------------------------------------------------------

    def reconfigure_vehicle(
        self,
        configuration: str,
        on_done: Callable[[ReconfigReport], None] | None = None,
    ) -> ReconfigReport:
        """Load a vehicle-partition bitstream through the PR controller.

        The vehicle detector drops frames for the duration; the pedestrian
        detector is untouched unless the controller's data path occupies a
        shared HP port (ZyCAP), in which case its frame traffic queues.
        """
        if not self.vehicle.available:
            raise ReconfigurationError("vehicle partition is already reconfiguring")
        self.vehicle.available = False
        self.trace.emit(
            self.sim.now,
            "soc",
            "partition.down",
            f"vehicle partition down for PR -> {configuration}",
            configuration=configuration,
        )

        if self.pr.occupies_hp_port():
            # ZyCAP-style: the bitstream pull occupies HP0 alongside the
            # pedestrian DMA traffic for the whole transfer.
            duration = self.pr.transfer_time(self.repository.get(configuration).size_bytes)
            equivalent_bytes = int(duration * self.hp0.spec.effective_bandwidth())
            self.hp0.request(equivalent_bytes, on_done=lambda: None, label="zycap-bitstream")

        def finished(report: ReconfigReport) -> None:
            self.vehicle.available = True
            if report.ok:
                self.vehicle.configuration = configuration
                self.trace.emit(
                    self.sim.now,
                    "soc",
                    "partition.up",
                    f"vehicle partition up ({configuration})",
                    configuration=configuration,
                )
                self.telemetry.histogram("reconfig_ms").observe(report.duration_s * 1e3)
                self.telemetry.gauge(
                    "pr_throughput_mbs", controller=report.controller
                ).set(report.throughput_mb_s)
            else:
                # Failed load: the partition keeps its last-good image (the
                # PR flow never altered the active frames before ICAP ran).
                self._degrade(
                    "pr-fallback",
                    f"{report.error}; partition restored to {self.vehicle.configuration}",
                )
            self.reconfigurations.append(report)
            if on_done is not None:
                on_done(report)

        try:
            return self.pr.reconfigure(configuration, on_done=finished)
        except ReconfigurationError:
            # Synchronous rejection (e.g. integrity check): the partition
            # was never touched, so bring it straight back up.
            self.vehicle.available = True
            self._degrade(
                "pr-rejected",
                f"{configuration} rejected; partition stays on {self.vehicle.configuration}",
            )
            raise

    def swap_vehicle_model(self, model_name: str) -> None:
        """Day<->dusk: select the other BRAM-resident SVM model (no PR)."""
        if not self.vehicle.available:
            raise ReconfigurationError("cannot swap models during reconfiguration")
        self.vehicle_model = model_name
        self.trace.emit(
            self.sim.now,
            "soc",
            "model.swap",
            f"vehicle model swap -> {model_name}",
            model=model_name,
        )
        self.telemetry.counter("model_swaps").inc()

    # Reporting ----------------------------------------------------------------

    def record_telemetry(self) -> None:
        """Publish the SoC's cumulative counters into the metrics registry.

        Called at the end of a drive (or any time): bytes moved per HP-port
        hop and per DMA engine, link busy time, and interrupt deliveries all
        become labelled gauges, so an exported snapshot carries the full
        Fig. 6 data-movement audit.
        """
        if not self.telemetry.enabled:
            return
        for link in (self.hp0, self.hp1, self.hp2):
            self.telemetry.gauge("link_bytes_moved", link=link.spec.name).set(link.bytes_moved)
            self.telemetry.gauge("link_busy_s", link=link.spec.name).set(link.busy_time)
        for dma in (self.ped_in_dma, self.ped_out_dma, self.veh_in_dma, self.veh_out_dma):
            self.telemetry.gauge("dma_bytes_transferred", engine=dma.name).set(
                dma.bytes_transferred
            )
        for line in (
            self.ped_in_dma.irq_line,
            self.ped_out_dma.irq_line,
            self.veh_in_dma.irq_line,
            self.veh_out_dma.irq_line,
            self.pr.irq_line,
            self.pr.error_line,
        ):
            self.telemetry.gauge("irq_delivered", line=line).set(self.interrupts.count(line))

    def observability_snapshot(self) -> dict:
        """Small, deterministic counter snapshot for frame-level monitoring.

        Everything here is a pure function of the simulation (no wall
        clocks, no host state), so the runtime monitor can embed it in
        replayable frame records.  Distinct from :meth:`stats`, which is a
        human-facing digest and free to grow non-deterministic context.
        """
        return {
            "pedestrian_processed": self.pedestrian.frames_processed,
            "pedestrian_dropped": self.pedestrian.frames_dropped,
            "vehicle_processed": self.vehicle.frames_processed,
            "vehicle_dropped": self.vehicle.frames_dropped,
            "vehicle_model": self.vehicle_model,
            "reconfigurations": len(self.reconfigurations),
        }

    def stats(self) -> dict:
        """Point-in-time counters of every SoC component."""
        return {
            "time_s": self.sim.now,
            "pedestrian": {
                "processed": self.pedestrian.frames_processed,
                "dropped": self.pedestrian.frames_dropped,
            },
            "vehicle": {
                "processed": self.vehicle.frames_processed,
                "dropped": self.vehicle.frames_dropped,
                "configuration": self.vehicle.configuration,
            },
            "reconfigurations": [
                {
                    "bitstream": r.bitstream,
                    "duration_ms": r.duration_s * 1e3,
                    "throughput_mb_s": r.throughput_mb_s,
                }
                for r in self.reconfigurations
            ],
            "interrupts": {
                name: self.interrupts.count(name)
                for name in (
                    self.ped_in_dma.irq_line,
                    self.ped_out_dma.irq_line,
                    self.veh_in_dma.irq_line,
                    self.veh_out_dma.irq_line,
                    self.pr.irq_line,
                )
            },
        }
