"""Zynq SoC substrate: event kernel, AXI paths, DMA, PR controllers, SoC."""

from repro.zynq.bitstream import (
    PAPER_PARTIAL_BITSTREAM_BYTES,
    BitstreamRepository,
    PartialBitstream,
    paper_bitstreams,
)
from repro.zynq.bus import (
    GP_PORT_LITE,
    HP_PORT,
    HP_PORT_VIDEO,
    ICAP_PORT,
    PL_DDR_PORT,
    PS_CENTRAL_INTERCONNECT,
    PS_DDR_PORT,
    BusLink,
    LinkSpec,
    Path,
)
from repro.zynq.dma import DmaDescriptor, DmaEngine, DmaState
from repro.zynq.events import EventHandle, Simulator, Trace, TraceRecord
from repro.zynq.firmware import DetectionFirmware, FirmwareStats, StreamState
from repro.zynq.interrupts import InterruptController, InterruptLine
from repro.zynq.pr import (
    ALL_CONTROLLERS,
    THEORETICAL_MAX_MB_S,
    BasePrController,
    HwIcapController,
    PaperPrController,
    PcapController,
    PrState,
    ReconfigReport,
    ZycapController,
)
from repro.zynq.soc import FRAME_BYTES, RESULT_BYTES, HwDetector, ZynqSoC

__all__ = [
    "ALL_CONTROLLERS",
    "BasePrController",
    "BitstreamRepository",
    "BusLink",
    "DmaDescriptor",
    "DmaEngine",
    "DmaState",
    "DetectionFirmware",
    "FirmwareStats",
    "StreamState",
    "EventHandle",
    "FRAME_BYTES",
    "GP_PORT_LITE",
    "HP_PORT",
    "HP_PORT_VIDEO",
    "HwDetector",
    "HwIcapController",
    "ICAP_PORT",
    "InterruptController",
    "InterruptLine",
    "LinkSpec",
    "PAPER_PARTIAL_BITSTREAM_BYTES",
    "PL_DDR_PORT",
    "PS_CENTRAL_INTERCONNECT",
    "PS_DDR_PORT",
    "PaperPrController",
    "PartialBitstream",
    "Path",
    "PcapController",
    "PrState",
    "RESULT_BYTES",
    "ReconfigReport",
    "Simulator",
    "THEORETICAL_MAX_MB_S",
    "Trace",
    "TraceRecord",
    "ZycapController",
    "ZynqSoC",
    "paper_bitstreams",
]
