"""AXI data-path models: ports, links, burst timing, contention.

Throughput through a configuration path is dominated by *which interconnect
the data traverses* — the paper's whole PR argument.  Each :class:`BusLink`
has a beat width, a clock, a maximum burst length, and a per-burst overhead
(arbitration, address phase, turnaround).  Effective bandwidth is then

    bytes_per_beat * f_clk * burst / (burst + overhead)

which reproduces the published numbers:

* PCAP via the PS central interconnect: 4 B x 100 MHz with short (4-beat)
  bursts and ~7 cycles of interconnect overhead -> ~145 MB/s.
* AXI HWICAP via a GP port: single-beat AXI-Lite writes, ~20 cycles of
  overhead each -> ~19 MB/s.
* ZyCAP via an HP port: 256-beat bursts, ~12 cycles overhead -> ~382 MB/s.
* The paper's controller from PL DDR: 256-beat bursts, ~6.5 cycles of DDR
  turnaround only -> ~390 MB/s.

Links are shared resources with FIFO arbitration: concurrent requests
serialise, modelling HP-port contention between video DMA and a ZyCAP-style
reconfiguration path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BusError
from repro.zynq.events import Simulator


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of one AXI link/hop.

    Attributes:
        name: Link label for traces.
        clock_hz: Link clock.
        bytes_per_beat: Data width in bytes.
        max_burst_beats: Longest burst the hop supports.
        overhead_cycles_per_burst: Arbitration/address/turnaround cycles
            charged per burst.
    """

    name: str
    clock_hz: float = 100e6
    bytes_per_beat: int = 4
    max_burst_beats: int = 256
    overhead_cycles_per_burst: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.bytes_per_beat <= 0 or self.max_burst_beats <= 0:
            raise BusError(f"invalid link spec {self}")
        if self.overhead_cycles_per_burst < 0:
            raise BusError("overhead must be >= 0")

    @property
    def peak_bandwidth(self) -> float:
        """Bytes/s with zero overhead."""
        return self.bytes_per_beat * self.clock_hz

    def effective_bandwidth(self, burst_beats: int | None = None) -> float:
        """Bytes/s including per-burst overhead."""
        beats = min(burst_beats or self.max_burst_beats, self.max_burst_beats)
        if beats <= 0:
            raise BusError("burst must be positive")
        cycles_per_burst = beats + self.overhead_cycles_per_burst
        return self.bytes_per_beat * beats * self.clock_hz / cycles_per_burst

    def transfer_time(self, n_bytes: int, burst_beats: int | None = None) -> float:
        """Seconds to move ``n_bytes`` over an uncontended link."""
        if n_bytes < 0:
            raise BusError(f"bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        beats = min(burst_beats or self.max_burst_beats, self.max_burst_beats)
        beats_total = -(-n_bytes // self.bytes_per_beat)
        bursts = -(-beats_total // beats)
        cycles = beats_total + bursts * self.overhead_cycles_per_burst
        return cycles / self.clock_hz


@dataclass
class _LinkJob:
    n_bytes: int
    burst_beats: int | None
    on_done: Callable[[], None]
    label: str


class BusLink:
    """A shared link with FIFO arbitration in a discrete-event simulation."""

    def __init__(self, sim: Simulator, spec: LinkSpec):
        self.sim = sim
        self.spec = spec
        self._queue: list[_LinkJob] = []
        self._busy = False
        self.bytes_moved = 0
        self.busy_time = 0.0
        self.jobs_completed = 0

    def request(
        self,
        n_bytes: int,
        on_done: Callable[[], None],
        burst_beats: int | None = None,
        label: str = "",
    ) -> None:
        """Enqueue a transfer; ``on_done`` fires at completion time."""
        if n_bytes < 0:
            raise BusError(f"bytes must be >= 0, got {n_bytes}")
        self._queue.append(_LinkJob(n_bytes, burst_beats, on_done, label))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job = self._queue.pop(0)
        duration = self.spec.transfer_time(job.n_bytes, job.burst_beats)
        self.busy_time += duration

        def finish() -> None:
            self.bytes_moved += job.n_bytes
            self.jobs_completed += 1
            job.on_done()
            self._start_next()

        self.sim.schedule(duration, finish)

    @property
    def queue_depth(self) -> int:
        """Transfers waiting behind the one in flight."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a transfer occupies the link."""
        return self._busy


class Path:
    """An ordered chain of links a transfer must traverse.

    Store-and-forward at burst granularity collapses, for long transfers,
    to the bottleneck link's effective bandwidth — so the path time is
    modelled as the max per-link time plus the smaller links' single-burst
    fill latencies.
    """

    def __init__(self, name: str, links: list[LinkSpec]):
        if not links:
            raise BusError(f"path {name!r} needs at least one link")
        self.name = name
        self.links = links

    def bottleneck(self, burst_beats: int | None = None) -> LinkSpec:
        """The slowest link of the chain at this burst size."""
        return min(self.links, key=lambda l: l.effective_bandwidth(burst_beats))

    def effective_bandwidth(self, burst_beats: int | None = None) -> float:
        """Sustained bytes/s through the chain (bottleneck-bound)."""
        return self.bottleneck(burst_beats).effective_bandwidth(burst_beats)

    def transfer_time(self, n_bytes: int, burst_beats: int | None = None) -> float:
        """Seconds to move ``n_bytes`` end to end, including hop fill."""
        slowest = max(l.transfer_time(n_bytes, burst_beats) for l in self.links)
        # Pipeline fill: one burst through each non-bottleneck hop.
        beats = burst_beats or min(l.max_burst_beats for l in self.links)
        fill = sum(
            l.transfer_time(min(n_bytes, beats * l.bytes_per_beat), burst_beats)
            for l in self.links
        ) - max(
            l.transfer_time(min(n_bytes, beats * l.bytes_per_beat), burst_beats)
            for l in self.links
        )
        return slowest + fill


# Calibrated link specs for the Zynq-7000 configuration paths --------------

# ICAPE2 / PCAP port ceiling: 32 bit at 100 MHz = 400 MB/s.
ICAP_PORT = LinkSpec("icap-port", clock_hz=100e6, bytes_per_beat=4, max_burst_beats=256, overhead_cycles_per_burst=0.0)

# PS central interconnect as seen by the PCAP DMA: short bursts, heavy
# arbitration -> ~145 MB/s.
PS_CENTRAL_INTERCONNECT = LinkSpec(
    "ps-central-interconnect", clock_hz=100e6, bytes_per_beat=4, max_burst_beats=4, overhead_cycles_per_burst=7.0
)

# GP port carrying AXI-Lite single-beat writes (AXI HWICAP) -> ~19 MB/s.
GP_PORT_LITE = LinkSpec(
    "gp-port-axi-lite", clock_hz=100e6, bytes_per_beat=4, max_burst_beats=1, overhead_cycles_per_burst=20.0
)

# HP port with long bursts (ZyCAP's DMA) -> ~382 MB/s at the config clock.
HP_PORT = LinkSpec(
    "hp-port", clock_hz=100e6, bytes_per_beat=4, max_burst_beats=256, overhead_cycles_per_burst=12.0
)

# PL-side DDR3 controller port (the paper's controller) -> ~390 MB/s.
PL_DDR_PORT = LinkSpec(
    "pl-ddr-port", clock_hz=100e6, bytes_per_beat=4, max_burst_beats=256, overhead_cycles_per_burst=6.5
)

# High-bandwidth HP port at the fabric data width for video traffic
# (64 bit @ 150 MHz = 1.2 GB/s), used by the frame DMAs in Fig. 6.
HP_PORT_VIDEO = LinkSpec(
    "hp-port-video", clock_hz=150e6, bytes_per_beat=8, max_burst_beats=256, overhead_cycles_per_burst=12.0
)

# PS DDR controller serving the HP/central masters.
PS_DDR_PORT = LinkSpec(
    "ps-ddr-port", clock_hz=150e6, bytes_per_beat=8, max_burst_beats=256, overhead_cycles_per_burst=8.0
)
