"""PS firmware model: the interrupt-driven driver on the ARM cores.

The paper: "the software applications on ARM cores manage the data transfer
between PS and PL and control the reconfiguration process", with DMA cores
and detectors signalling completion through interrupts.  This module is
that software as an explicit state machine: it subscribes to the SoC's
interrupt lines, keeps per-stream frame queues, programs the next transfer
from the ISR path, and serialises reconfiguration requests.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.zynq.soc import FRAME_BYTES, ZynqSoC


class StreamState(enum.Enum):
    """Lifecycle of the frame-streaming loop."""

    IDLE = "idle"
    STREAMING = "streaming"


@dataclass
class FirmwareStats:
    """Counters the driver keeps (the paper reads them via perf counters)."""

    frames_queued: int = 0
    frames_started: int = 0
    frames_completed: int = 0
    frames_rejected: int = 0
    reconfigs_requested: int = 0
    reconfigs_completed: int = 0
    reconfigs_deferred: int = 0
    dma_errors: int = 0


class DetectionFirmware:
    """Interrupt-driven frame and reconfiguration management on the PS.

    Frames are *queued* (as a capture front-end would) and issued to a
    detector as soon as it can accept one; completion interrupts trigger
    the next issue.  Reconfiguration requests queue behind an in-flight
    reconfiguration instead of faulting.
    """

    def __init__(self, soc: ZynqSoC, queue_depth: int = 3):
        if queue_depth < 1:
            raise SimulationError("queue depth must be >= 1")
        self.soc = soc
        self.queue_depth = queue_depth
        self.stats = {"pedestrian": FirmwareStats(), "vehicle": FirmwareStats()}
        self._queues: dict[str, deque] = {"pedestrian": deque(), "vehicle": deque()}
        self._state = {"pedestrian": StreamState.IDLE, "vehicle": StreamState.IDLE}
        self._pending_reconfigs: deque[str] = deque()
        self._reconfiguring = False
        # ISR wiring: result-DMA done -> issue next frame; errors -> reset.
        soc.interrupts.connect(soc.ped_out_dma.irq_line, lambda _l: self._on_frame_done("pedestrian"))
        soc.interrupts.connect(soc.veh_out_dma.irq_line, lambda _l: self._on_frame_done("vehicle"))
        for dma in (soc.ped_in_dma, soc.ped_out_dma, soc.veh_in_dma, soc.veh_out_dma):
            soc.interrupts.connect(dma.error_line, self._on_dma_error)
        soc.interrupts.connect(soc.pr.irq_line, lambda _l: self._on_reconfig_done())

    # Frame path ----------------------------------------------------------

    def queue_frame(self, which: str, frame_bytes: int = FRAME_BYTES) -> bool:
        """Enqueue a captured frame; returns False when the queue is full."""
        stats = self.stats[which]
        queue = self._queues[which]
        if len(queue) >= self.queue_depth:
            stats.frames_rejected += 1
            return False
        queue.append(frame_bytes)
        stats.frames_queued += 1
        self._pump(which)
        return True

    def _pump(self, which: str) -> None:
        if self._state[which] is not StreamState.IDLE:
            return
        queue = self._queues[which]
        if not queue:
            return
        frame_bytes = queue[0]
        accepted = self.soc.submit_frame(which, frame_bytes=frame_bytes)
        if not accepted:
            # Partition down (reconfiguring): drop this frame, keep draining.
            queue.popleft()
            self.stats[which].frames_rejected += 1
            if queue:
                self.soc.sim.schedule(1e-6, lambda: self._pump(which))
            return
        queue.popleft()
        self._state[which] = StreamState.STREAMING
        self.stats[which].frames_started += 1

    def _on_frame_done(self, which: str) -> None:
        self.stats[which].frames_completed += 1
        self._state[which] = StreamState.IDLE
        self._pump(which)

    def _on_dma_error(self, line: str) -> None:
        which = "pedestrian" if "ped" in line else "vehicle"
        self.stats[which].dma_errors += 1
        # Reset the faulted engine and resume the stream.
        for dma in (
            self.soc.ped_in_dma,
            self.soc.ped_out_dma,
            self.soc.veh_in_dma,
            self.soc.veh_out_dma,
        ):
            if dma.error_line == line:
                dma.reset()
        self._state[which] = StreamState.IDLE
        self._pump(which)

    # Reconfiguration path ---------------------------------------------------

    def request_reconfiguration(self, configuration: str) -> None:
        """Queue a vehicle-partition reconfiguration (serialised)."""
        stats = self.stats["vehicle"]
        stats.reconfigs_requested += 1
        if self._reconfiguring:
            stats.reconfigs_deferred += 1
            self._pending_reconfigs.append(configuration)
            return
        self._start_reconfig(configuration)

    def _start_reconfig(self, configuration: str) -> None:
        self._reconfiguring = True
        self.soc.reconfigure_vehicle(configuration)

    def _on_reconfig_done(self) -> None:
        self.stats["vehicle"].reconfigs_completed += 1
        self._reconfiguring = False
        if self._pending_reconfigs:
            nxt = self._pending_reconfigs.popleft()
            self.soc.sim.schedule(1e-6, lambda: self._start_reconfig(nxt))
        # The vehicle stream may have frames waiting.
        self._pump("vehicle")
