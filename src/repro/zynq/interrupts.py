"""PL-to-PS interrupt controller model.

Fig. 6: "DMA cores and detection modules generate interrupt requests and
inform PS of their completed assigned task."  The controller latches lines,
dispatches registered handlers, and counts deliveries for the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.telemetry.spans import NullTracer, Tracer
from repro.zynq.events import Simulator

# Interrupt latency: PL->GIC->ISR entry, a few hundred ns on a Zynq.
DEFAULT_IRQ_LATENCY_S = 500e-9


@dataclass
class InterruptLine:
    """One named PL-to-PS interrupt line."""

    name: str
    pending: bool = False
    count: int = 0
    handlers: list[Callable[[str], None]] = field(default_factory=list)


class InterruptController:
    """Latching interrupt controller with per-line handlers."""

    def __init__(
        self,
        sim: Simulator,
        latency_s: float = DEFAULT_IRQ_LATENCY_S,
        tracer: Tracer | NullTracer | None = None,
    ):
        if latency_s < 0:
            raise SimulationError("interrupt latency must be >= 0")
        self.sim = sim
        self.latency_s = latency_s
        self.tracer = tracer if tracer is not None else NullTracer()
        self._lines: dict[str, InterruptLine] = {}

    def register(self, name: str) -> InterruptLine:
        """Create (or return) a line."""
        if name not in self._lines:
            self._lines[name] = InterruptLine(name=name)
        return self._lines[name]

    def connect(self, name: str, handler: Callable[[str], None]) -> None:
        """Attach a handler; called with the line name on each delivery."""
        self.register(name).handlers.append(handler)

    def raise_irq(self, name: str) -> None:
        """Assert a line; handlers run after the controller latency."""
        line = self.register(name)
        line.pending = True

        def deliver() -> None:
            if not line.pending:
                return
            line.pending = False
            line.count += 1
            if self.tracer.enabled:
                self.tracer.event("irq.delivered", time_s=self.sim.now, line=name)
            for handler in list(line.handlers):
                handler(name)

        self.sim.schedule(self.latency_s, deliver)

    def pending_lines(self) -> list[str]:
        """Names of lines raised but not yet delivered."""
        return sorted(n for n, l in self._lines.items() if l.pending)

    def count(self, name: str) -> int:
        """Interrupts delivered so far on ``name``."""
        return self.register(name).count
