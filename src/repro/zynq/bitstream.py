"""Partial bitstreams and their repository.

A partial bitstream is modelled by its size, target partition, and an
integrity word; the PR controllers check integrity before driving ICAP, and
the failure-injection tests corrupt it.  The paper's partial bit files are
8 MB and reconfigure in ~20 ms.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import BitstreamError

# The paper's partial bitstream size ("with our partial bit files of 8MB",
# decimal MB: 8 MB / 390 MB/s = 20.5 ms, the paper's "20ms" figure).
PAPER_PARTIAL_BITSTREAM_BYTES = 8_000_000


@dataclass
class PartialBitstream:
    """One partial configuration file.

    Attributes:
        name: Configuration name ("day_dusk", "dark", ...).
        partition: Target reconfigurable partition name.
        size_bytes: File size (drives reconfiguration time).
        payload_seed: Stand-in for the configuration frames; the CRC is
            computed over it.
    """

    name: str
    partition: str = "vehicle"
    size_bytes: int = PAPER_PARTIAL_BITSTREAM_BYTES
    payload_seed: int = 0
    _crc: int = field(init=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise BitstreamError(f"bitstream size must be positive, got {self.size_bytes}")
        if self.size_bytes % 4 != 0:
            raise BitstreamError("bitstream size must be a whole number of 32-bit words")
        self._crc = self._compute_crc()

    def _compute_crc(self) -> int:
        header = f"{self.name}:{self.partition}:{self.size_bytes}:{self.payload_seed}"
        return zlib.crc32(header.encode())

    @property
    def crc(self) -> int:
        return self._crc

    @property
    def words(self) -> int:
        return self.size_bytes // 4

    def verify(self) -> bool:
        """True when the stored CRC matches the payload."""
        return self._crc == self._compute_crc()

    def corrupt(self) -> None:
        """Flip the integrity word (models a damaged file in DDR)."""
        self._crc ^= 0xDEADBEEF


class BitstreamRepository:
    """The PL-DDR-resident store of partial bitstreams.

    The paper's flow "initially transfer[s] partial bitstreams to the DDR
    module which is dedicated to PL"; this class is that store.
    """

    def __init__(self) -> None:
        self._store: dict[str, PartialBitstream] = {}

    def add(self, bitstream: PartialBitstream) -> None:
        if bitstream.name in self._store:
            raise BitstreamError(f"bitstream {bitstream.name!r} already loaded")
        self._store[bitstream.name] = bitstream

    def get(self, name: str) -> PartialBitstream:
        if name not in self._store:
            raise BitstreamError(
                f"bitstream {name!r} not in PL DDR (loaded: {sorted(self._store)})"
            )
        return self._store[name]

    def names(self) -> list[str]:
        return sorted(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __len__(self) -> int:
        return len(self._store)


def paper_bitstreams() -> BitstreamRepository:
    """The two partial configurations of the paper's vehicle partition."""
    repo = BitstreamRepository()
    repo.add(PartialBitstream(name="day_dusk", payload_seed=1))
    repo.add(PartialBitstream(name="dark", payload_seed=2))
    return repo
