"""Partial bitstreams and their repository.

A partial bitstream is modelled by its size, target partition, and an
integrity word; the PR controllers check integrity before driving ICAP, and
the failure-injection tests corrupt it.  The paper's partial bit files are
8 MB and reconfigure in ~20 ms.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import BitstreamError
from repro.rng import stable_bytes

# The paper's partial bitstream size ("with our partial bit files of 8MB",
# decimal MB: 8 MB / 390 MB/s = 20.5 ms, the paper's "20ms" figure).
PAPER_PARTIAL_BITSTREAM_BYTES = 8_000_000

# Size of the in-memory stand-in for the configuration frames.  Real partial
# bit files are megabytes; modelling integrity only needs a representative
# block that the CRC actually covers.
PAYLOAD_DIGEST_BYTES = 4096


@dataclass
class PartialBitstream:
    """One partial configuration file.

    Attributes:
        name: Configuration name ("day_dusk", "dark", ...).
        partition: Target reconfigurable partition name.
        size_bytes: File size (drives reconfiguration time).
        payload_seed: Stand-in for the configuration frames; the CRC is
            computed over it.
    """

    name: str
    partition: str = "vehicle"
    size_bytes: int = PAPER_PARTIAL_BITSTREAM_BYTES
    payload_seed: int = 0
    _payload: bytes = field(init=False, repr=False)
    _crc: int = field(init=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise BitstreamError(f"bitstream size must be positive, got {self.size_bytes}")
        if self.size_bytes % 4 != 0:
            raise BitstreamError("bitstream size must be a whole number of 32-bit words")
        self._payload = self._generate_payload()
        self._crc = self._compute_crc()

    def _generate_payload(self) -> bytes:
        # Deterministic stand-in for the configuration frames; the "flash
        # master copy" a repair re-stages from is this same generator.
        key = f"{self.name}:{self.partition}:{self.size_bytes}:{self.payload_seed}"
        return stable_bytes(key, PAYLOAD_DIGEST_BYTES)

    def _compute_crc(self) -> int:
        header = f"{self.name}:{self.partition}:{self.size_bytes}:{self.payload_seed}"
        return zlib.crc32(self._payload, zlib.crc32(header.encode()))

    @property
    def crc(self) -> int:
        """The stored integrity word."""
        return self._crc

    @property
    def payload(self) -> bytes:
        """The in-memory stand-in for the configuration frames."""
        return self._payload

    @property
    def words(self) -> int:
        """File size in 32-bit configuration words (the ICAP transfer unit)."""
        return self.size_bytes // 4

    def verify(self) -> bool:
        """True when the stored CRC matches the payload."""
        return self._crc == self._compute_crc()

    def corrupt(self) -> None:
        """Flip the integrity word (models a damaged file in DDR)."""
        self._crc ^= 0xDEADBEEF

    def corrupt_payload(self) -> None:
        """Flip a payload byte (models damaged configuration frames)."""
        damaged = bytearray(self._payload)
        damaged[len(damaged) // 2] ^= 0xFF
        self._payload = bytes(damaged)

    def repair(self) -> None:
        """Re-stage payload and CRC from the flash master copy."""
        self._payload = self._generate_payload()
        self._crc = self._compute_crc()


class BitstreamRepository:
    """The PL-DDR-resident store of partial bitstreams.

    The paper's flow "initially transfer[s] partial bitstreams to the DDR
    module which is dedicated to PL"; this class is that store.
    """

    def __init__(self) -> None:
        self._store: dict[str, PartialBitstream] = {}

    def add(self, bitstream: PartialBitstream) -> None:
        """Load one bitstream into PL DDR; names are unique."""
        if bitstream.name in self._store:
            raise BitstreamError(f"bitstream {bitstream.name!r} already loaded")
        self._store[bitstream.name] = bitstream

    def get(self, name: str) -> PartialBitstream:
        """Look a loaded bitstream up by name."""
        if name not in self._store:
            raise BitstreamError(
                f"bitstream {name!r} not in PL DDR (loaded: {sorted(self._store)})"
            )
        return self._store[name]

    def names(self) -> list[str]:
        """Sorted names of every loaded bitstream."""
        return sorted(self._store)

    def checksum(self, name: str) -> int:
        """Stored CRC of one entry."""
        return self.get(name).crc

    def verify_all(self) -> dict[str, bool]:
        """Integrity check every entry (a boot-time scrub pass)."""
        return {name: bs.verify() for name, bs in sorted(self._store.items())}

    def restage(self, name: str) -> None:
        """Repair one entry from its flash master copy."""
        self.get(name).repair()

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __len__(self) -> int:
        return len(self._store)


def paper_bitstreams() -> BitstreamRepository:
    """The two partial configurations of the paper's vehicle partition."""
    repo = BitstreamRepository()
    repo.add(PartialBitstream(name="day_dusk", payload_seed=1))
    repo.add(PartialBitstream(name="dark", payload_seed=2))
    return repo
