"""The one sanctioned RNG construction point for the simulation domains.

Determinism is load-bearing here: byte-identical fault replay and the
metrics-derived Section IV numbers both assume that every random stream
in a simulation package flows from an explicit seed.  The
``determinism-rng`` lint rule therefore bans direct ``random`` /
``np.random`` construction inside sim domains; this module is the single
exemption and every generator is built through it.

* :func:`make_rng` — a seeded ``numpy`` generator (the workhorse);
* :func:`derive_seed` — fold a parent seed and a label into a stream seed
  so sub-components get decorrelated but reproducible streams;
* :func:`stable_bytes` — a deterministic byte string keyed by text (the
  bitstream payload stand-in and anything else needing stable opaque
  bytes).
"""

from __future__ import annotations

import random  # reprolint: skip=determinism-rng
import zlib

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """A seeded generator; the only legal way to get one in a sim domain.

    The underlying bit generator is numpy's default (PCG64), so streams
    are identical to ``np.random.default_rng(seed)`` — migrating legacy
    call sites to this helper changes no numbers.
    """
    return np.random.default_rng(seed)  # reprolint: skip=determinism-rng


def derive_seed(seed: int, label: str) -> int:
    """Fold ``label`` into ``seed``, giving a decorrelated stream seed.

    Useful when one configured seed must fan out to several independent
    components (sensor noise, fault jitter, scene content) without the
    streams shadowing each other.
    """
    return (seed * 0x9E3779B1 + zlib.crc32(label.encode())) % (2**63)


def stable_bytes(key: str, n: int) -> bytes:
    """``n`` deterministic bytes keyed by ``key``.

    Stream-compatible with ``random.Random(key).randbytes(n)``, which the
    bitstream payload generator historically used — existing CRCs and
    byte-identical replay logs are unchanged.
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    return random.Random(key).randbytes(n)  # reprolint: skip=determinism-rng
