"""Restricted Boltzmann machine trained with contrastive divergence.

DBNs are "probabilistic models composed of multiple layers of stochastic,
hidden variables ... separately trained restricted Boltzmann machines which
are stacked on top of each other" (paper, Section III-B).  This module is one
such layer: binary visible and hidden units, CD-k training (Hinton 2002),
numpy only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.ml.kernels import affine_matrix
from repro.ml.logistic import sigmoid
from repro.rng import make_rng


@dataclass
class RbmConfig:
    """Contrastive-divergence training parameters.

    Attributes:
        learning_rate: Step size for the CD weight update.
        epochs: Passes over the training data.
        batch_size: Mini-batch size.
        cd_k: Gibbs steps per update (CD-1 is standard and sufficient here).
        momentum: Classic momentum on the parameter updates.
        weight_decay: L2 penalty on weights.
        seed: RNG seed (weight init and Gibbs sampling).
    """

    learning_rate: float = 0.1
    epochs: int = 20
    batch_size: int = 32
    cd_k: int = 1
    momentum: float = 0.5
    weight_decay: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ModelError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs < 1 or self.batch_size < 1 or self.cd_k < 1:
            raise ModelError("epochs, batch_size and cd_k must be >= 1")
        if not 0.0 <= self.momentum < 1.0:
            raise ModelError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.weight_decay < 0:
            raise ModelError(f"weight_decay must be >= 0, got {self.weight_decay}")


@dataclass
class Rbm:
    """Bernoulli-Bernoulli RBM.

    Attributes:
        n_visible: Visible units (81 for the paper's 9x9 binary window).
        n_hidden: Hidden units (20 then 8 in the paper's stack).
    """

    n_visible: int
    n_hidden: int
    config: RbmConfig = field(default_factory=RbmConfig)

    def __post_init__(self) -> None:
        if self.n_visible < 1 or self.n_hidden < 1:
            raise ModelError(
                f"unit counts must be >= 1, got visible={self.n_visible}, hidden={self.n_hidden}"
            )
        rng = make_rng(self.config.seed)
        self.weights = rng.normal(0.0, 0.01, size=(self.n_visible, self.n_hidden))
        self.visible_bias = np.zeros(self.n_visible)
        self.hidden_bias = np.zeros(self.n_hidden)
        self._rng = rng

    # Inference ----------------------------------------------------------

    def hidden_probabilities(self, visible: np.ndarray) -> np.ndarray:
        """P(h=1 | v) for a batch of visible vectors.

        Uses the batch-size-invariant kernel: this is the DBN's inference
        up-pass, so a window propagated alone must equal the same window
        propagated inside the sliding-scan batch, bit for bit.
        """
        v = self._check_batch(visible, self.n_visible, "visible")
        return sigmoid(affine_matrix(v, self.weights, self.hidden_bias))

    def visible_probabilities(self, hidden: np.ndarray) -> np.ndarray:
        """P(v=1 | h) for a batch of hidden vectors."""
        h = self._check_batch(hidden, self.n_hidden, "hidden")
        return sigmoid(h @ self.weights.T + self.visible_bias)

    def sample_hidden(self, visible: np.ndarray) -> np.ndarray:
        """Bernoulli sample of the hidden layer given visibles."""
        probs = self.hidden_probabilities(visible)
        return (self._rng.random(probs.shape) < probs).astype(np.float64)

    def sample_visible(self, hidden: np.ndarray) -> np.ndarray:
        """Bernoulli sample of the visible layer given hiddens."""
        probs = self.visible_probabilities(hidden)
        return (self._rng.random(probs.shape) < probs).astype(np.float64)

    def free_energy(self, visible: np.ndarray) -> np.ndarray:
        """F(v) = -v.b_v - sum_j softplus(v W_j + b_h_j); lower = more likely."""
        v = self._check_batch(visible, self.n_visible, "visible")
        linear = v @ self.visible_bias
        pre = v @ self.weights + self.hidden_bias
        softplus = np.where(pre > 30, pre, np.log1p(np.exp(np.minimum(pre, 30))))
        return -linear - softplus.sum(axis=1)

    def reconstruct(self, visible: np.ndarray) -> np.ndarray:
        """One mean-field down-up pass; used for reconstruction error."""
        return self.visible_probabilities(self.hidden_probabilities(visible))

    # Training -----------------------------------------------------------

    def fit(self, data: np.ndarray) -> list[float]:
        """CD-k training; returns per-epoch mean reconstruction error."""
        v0 = self._check_batch(data, self.n_visible, "data")
        if not np.all((v0 >= 0.0) & (v0 <= 1.0)):
            raise ModelError("RBM training data must lie in [0, 1]")
        cfg = self.config
        n = v0.shape[0]
        inc_w = np.zeros_like(self.weights)
        inc_vb = np.zeros_like(self.visible_bias)
        inc_hb = np.zeros_like(self.hidden_bias)
        errors: list[float] = []
        for _ in range(cfg.epochs):
            order = self._rng.permutation(n)
            epoch_err = 0.0
            for start in range(0, n, cfg.batch_size):
                batch = v0[order[start : start + cfg.batch_size]]
                h_prob0 = self.hidden_probabilities(batch)
                h_state = (self._rng.random(h_prob0.shape) < h_prob0).astype(np.float64)
                v_model = batch
                h_prob = h_prob0
                for _step in range(cfg.cd_k):
                    v_model = self.visible_probabilities(h_state)
                    h_prob = self.hidden_probabilities(v_model)
                    h_state = (self._rng.random(h_prob.shape) < h_prob).astype(np.float64)
                m = batch.shape[0]
                grad_w = (batch.T @ h_prob0 - v_model.T @ h_prob) / m
                grad_vb = (batch - v_model).mean(axis=0)
                grad_hb = (h_prob0 - h_prob).mean(axis=0)
                inc_w = cfg.momentum * inc_w + cfg.learning_rate * (
                    grad_w - cfg.weight_decay * self.weights
                )
                inc_vb = cfg.momentum * inc_vb + cfg.learning_rate * grad_vb
                inc_hb = cfg.momentum * inc_hb + cfg.learning_rate * grad_hb
                self.weights += inc_w
                self.visible_bias += inc_vb
                self.hidden_bias += inc_hb
                epoch_err += float(np.sum((batch - v_model) ** 2))
            errors.append(epoch_err / n)
        return errors

    # Helpers --------------------------------------------------------------

    @staticmethod
    def _check_batch(data: np.ndarray, width: int, name: str) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if arr.ndim != 2 or arr.shape[1] != width:
            raise ModelError(f"{name} must be (N, {width}), got shape {arr.shape}")
        return arr
