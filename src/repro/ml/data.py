"""Small dataset utilities: splits, shuffling, class balancing."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.rng import make_rng


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (x_train, y_train, x_test, y_test).

    Stratified per label value so small classes survive the split.
    """
    x = np.asarray(features)
    y = np.asarray(labels).ravel()
    if x.shape[0] != y.size:
        raise ModelError(f"{x.shape[0]} samples but {y.size} labels")
    if not 0.0 < test_fraction < 1.0:
        raise ModelError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = make_rng(seed)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for value in np.unique(y):
        idx = np.flatnonzero(y == value)
        rng.shuffle(idx)
        n_test = max(1, int(round(idx.size * test_fraction)))
        if n_test >= idx.size:
            n_test = idx.size - 1
        test_idx.extend(idx[:n_test].tolist())
        train_idx.extend(idx[n_test:].tolist())
    train = np.asarray(sorted(train_idx))
    test = np.asarray(sorted(test_idx))
    return x[train], y[train], x[test], y[test]


def shuffle_together(features: np.ndarray, labels: np.ndarray, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle samples and labels with the same permutation."""
    x = np.asarray(features)
    y = np.asarray(labels).ravel()
    if x.shape[0] != y.size:
        raise ModelError(f"{x.shape[0]} samples but {y.size} labels")
    order = make_rng(seed).permutation(y.size)
    return x[order], y[order]


def balance_classes(
    features: np.ndarray,
    labels: np.ndarray,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Downsample every class to the size of the smallest one."""
    x = np.asarray(features)
    y = np.asarray(labels).ravel()
    if x.shape[0] != y.size:
        raise ModelError(f"{x.shape[0]} samples but {y.size} labels")
    rng = make_rng(seed)
    groups = [np.flatnonzero(y == value) for value in np.unique(y)]
    target = min(g.size for g in groups)
    if target == 0:
        raise ModelError("a class has no samples")
    keep: list[int] = []
    for g in groups:
        rng.shuffle(g)
        keep.extend(g[:target].tolist())
    keep_arr = np.asarray(sorted(keep))
    return x[keep_arr], y[keep_arr]
