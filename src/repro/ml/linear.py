"""Shared linear-model plumbing: weights, bias, decision values.

Both the LibLINEAR-style SVM (day/dusk/pedestrian classifiers) and the
logistic output layer of the DBN expose a linear decision function; the
hardware SVM classifier stage is a dot product against a model stored in
block RAM, so keeping the model as a plain (w, b) pair mirrors the paper's
"Trained Model" memories directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError, NotTrainedError
from repro.ml.kernels import affine_rows, ensure_rows


@dataclass
class LinearModel:
    """A trained linear decision function ``f(x) = w . x + b``.

    Attributes:
        weights: 1-D weight vector.
        bias: Scalar intercept.
        label_positive: Label returned for f(x) > 0.
        label_negative: Label returned for f(x) <= 0.
        meta: Free-form provenance (training set name, solver stats...).
    """

    weights: np.ndarray
    bias: float
    label_positive: int = 1
    label_negative: int = -1
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64).ravel()
        if self.weights.size == 0:
            raise ModelError("weights must be non-empty")

    @property
    def n_features(self) -> int:
        return self.weights.size

    def decision_values(self, features: np.ndarray) -> np.ndarray:
        """Raw margins for one vector or a (N, D) batch.

        Both arities route through the same batch-size-invariant kernel
        (:func:`repro.ml.kernels.affine_rows`), so a window scored alone is
        bitwise equal to the same window scored inside any batch — the
        contract the equivalence suite pins.
        """
        arr = np.asarray(features, dtype=np.float64)
        if arr.ndim == 1:
            if arr.size != self.n_features:
                raise ModelError(
                    f"feature length {arr.size} != model dimension {self.n_features}"
                )
            return np.asarray(affine_rows(arr[np.newaxis, :], self.weights, self.bias)[0])
        if arr.ndim == 2:
            return self.decision_batch(arr)
        raise ModelError(f"features must be 1-D or 2-D, got {arr.ndim}-D")

    def decision_batch(
        self, features: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Raw margins for a strict (N, D) batch — one kernel call, no loop.

        This is the sliding-window hot path: the whole feature matrix of a
        frame is scored by a single fixed-order GEMV.  ``out`` may name a
        preallocated (N,) buffer so steady-state frames allocate nothing.
        """
        arr = ensure_rows(features, self.n_features)
        return affine_rows(arr, self.weights, self.bias, out=out)

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Class labels for a strict (N, D) batch."""
        values = self.decision_batch(features)
        return np.where(values > 0.0, self.label_positive, self.label_negative)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class labels (label_positive / label_negative)."""
        values = np.atleast_1d(self.decision_values(features))
        return np.where(values > 0.0, self.label_positive, self.label_negative)

    def model_divergence(self, other: "LinearModel") -> float:
        """Angular distance in [0, 1] between two models' weight vectors.

        0 means identical direction, 1 means opposite.  Used to verify the
        paper's remark that the day/dusk/combined models "look very
        different".
        """
        if other.n_features != self.n_features:
            raise ModelError("cannot compare models of different dimension")
        na = np.linalg.norm(self.weights)
        nb = np.linalg.norm(other.weights)
        if na == 0.0 or nb == 0.0:
            raise ModelError("cannot compare a zero model")
        cos = float(np.dot(self.weights, other.weights) / (na * nb))
        cos = max(-1.0, min(1.0, cos))
        return float(np.arccos(cos) / np.pi)


def require_trained(model: "LinearModel | None", name: str) -> LinearModel:
    """Raise :class:`NotTrainedError` when ``model`` is None."""
    if model is None:
        raise NotTrainedError(f"{name} has not been trained yet")
    return model


def validate_training_set(features: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Common checks for binary training data; labels must be +1/-1."""
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64).ravel()
    if x.ndim != 2:
        raise ModelError(f"features must be (N, D), got shape {x.shape}")
    if x.shape[0] != y.size:
        raise ModelError(f"{x.shape[0]} samples but {y.size} labels")
    if x.shape[0] < 2:
        raise ModelError("need at least 2 training samples")
    uniques = set(np.unique(y).tolist())
    if not uniques.issubset({-1.0, 1.0}):
        raise ModelError(f"labels must be +1/-1, got {sorted(uniques)}")
    if uniques != {-1.0, 1.0}:
        raise ModelError("training set must contain both classes")
    return x, y
