"""Deep belief network: stacked RBMs + softmax head, greedy pretraining.

This is the paper's taillight classifier: "a DBN with 81 visible inputs
corresponding to the binary values of a 9x9 window of the image ... two
hidden layers with 20 and 8 hidden nodes ... the final output layer consists
of 4 nodes which determine the size and shape class of taillights."

Training follows the classical recipe: greedy layer-wise CD pretraining of
each RBM on the previous layer's hidden probabilities, then supervised
training of the softmax head (optionally with backprop fine-tuning through
the whole stack).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError, NotTrainedError
from repro.ml.logistic import SoftmaxConfig, SoftmaxLayer, one_hot, sigmoid, softmax
from repro.ml.rbm import Rbm, RbmConfig

# The paper's architecture, verbatim: 9x9 binary window -> 20 -> 8 -> 4.
PAPER_DBN_LAYERS = (81, 20, 8)
PAPER_DBN_CLASSES = 4


@dataclass
class DbnConfig:
    """Hyperparameters for the full DBN training recipe.

    Attributes:
        layers: Unit counts (visible, hidden1, hidden2, ...).
        n_classes: Output classes of the softmax head.
        rbm: CD training config shared by all RBM layers.
        head: Softmax head training config.
        finetune_epochs: Backprop epochs through the whole stack (0 skips).
        finetune_rate: Backprop learning rate.
        seed: Base seed; layer i uses seed + i.
    """

    layers: tuple[int, ...] = PAPER_DBN_LAYERS
    n_classes: int = PAPER_DBN_CLASSES
    rbm: RbmConfig = field(default_factory=RbmConfig)
    head: SoftmaxConfig = field(default_factory=SoftmaxConfig)
    finetune_epochs: int = 400
    finetune_rate: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.layers) < 2:
            raise ModelError("DBN needs at least one hidden layer")
        if any(n < 1 for n in self.layers):
            raise ModelError(f"layer sizes must be >= 1, got {self.layers}")
        if self.n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {self.n_classes}")
        if self.finetune_epochs < 0:
            raise ModelError("finetune_epochs must be >= 0")


class DeepBeliefNetwork:
    """Stacked-RBM classifier with greedy pretraining and optional fine-tune."""

    def __init__(self, config: DbnConfig | None = None):
        self.config = config or DbnConfig()
        cfg = self.config
        self.rbms: list[Rbm] = []
        for i in range(len(cfg.layers) - 1):
            layer_cfg = RbmConfig(
                learning_rate=cfg.rbm.learning_rate,
                epochs=cfg.rbm.epochs,
                batch_size=cfg.rbm.batch_size,
                cd_k=cfg.rbm.cd_k,
                momentum=cfg.rbm.momentum,
                weight_decay=cfg.rbm.weight_decay,
                seed=cfg.seed + i,
            )
            self.rbms.append(Rbm(cfg.layers[i], cfg.layers[i + 1], layer_cfg))
        self.head = SoftmaxLayer(cfg.layers[-1], cfg.n_classes, cfg.head)
        self._trained = False

    @property
    def n_visible(self) -> int:
        return self.config.layers[0]

    # Representation -------------------------------------------------------

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Propagate mean-field activations up to the top hidden layer."""
        acts = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if acts.shape[1] != self.n_visible:
            raise ModelError(
                f"input width {acts.shape[1]} != visible units {self.n_visible}"
            )
        for rbm in self.rbms:
            acts = rbm.hidden_probabilities(acts)
        return acts

    # Training --------------------------------------------------------------

    def pretrain(self, data: np.ndarray) -> list[list[float]]:
        """Greedy layer-wise CD pretraining; returns per-layer error traces."""
        acts = np.atleast_2d(np.asarray(data, dtype=np.float64))
        traces: list[list[float]] = []
        for rbm in self.rbms:
            traces.append(rbm.fit(acts))
            acts = rbm.hidden_probabilities(acts)
        return traces

    def fit(self, data: np.ndarray, labels: np.ndarray) -> dict:
        """Pretrain, train the head, and (optionally) fine-tune.

        Args:
            data: (N, n_visible) binary (or [0,1]) windows.
            labels: (N,) integer class labels in [0, n_classes).

        Returns:
            Training report: RBM error traces, head losses, fine-tune losses.
        """
        x = np.atleast_2d(np.asarray(data, dtype=np.float64))
        y = np.asarray(labels, dtype=np.int64).ravel()
        if x.shape[0] != y.size:
            raise ModelError(f"{x.shape[0]} samples but {y.size} labels")
        rbm_traces = self.pretrain(x)
        top = self.transform(x)
        head_losses = self.head.fit(top, y)
        finetune_losses = self._finetune(x, y) if self.config.finetune_epochs else []
        self._trained = True
        return {
            "rbm_errors": rbm_traces,
            "head_losses": head_losses,
            "finetune_losses": finetune_losses,
        }

    def _finetune(self, x: np.ndarray, y: np.ndarray) -> list[float]:
        """Full-stack backprop on cross-entropy (sigmoid hiddens, softmax out)."""
        cfg = self.config
        targets = one_hot(y, cfg.n_classes)
        n = x.shape[0]
        rate = cfg.finetune_rate
        losses: list[float] = []
        for _ in range(cfg.finetune_epochs):
            # Forward pass, keeping activations per layer.
            activations = [x]
            for rbm in self.rbms:
                activations.append(sigmoid(activations[-1] @ rbm.weights + rbm.hidden_bias))
            probs = softmax(activations[-1] @ self.head.weights + self.head.bias)
            loss = -np.mean(np.sum(targets * np.log(probs + 1e-12), axis=1))
            losses.append(float(loss))
            # Backward pass.
            delta = (probs - targets) / n
            grad_w_head = activations[-1].T @ delta
            grad_b_head = delta.sum(axis=0)
            back = delta @ self.head.weights.T
            self.head.weights -= rate * grad_w_head
            self.head.bias -= rate * grad_b_head
            for idx in range(len(self.rbms) - 1, -1, -1):
                act = activations[idx + 1]
                delta_h = back * act * (1.0 - act)
                grad_w = activations[idx].T @ delta_h
                grad_b = delta_h.sum(axis=0)
                back = delta_h @ self.rbms[idx].weights.T
                self.rbms[idx].weights -= rate * grad_w
                self.rbms[idx].hidden_bias -= rate * grad_b
        return losses

    # Prediction -------------------------------------------------------------

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """(N, n_classes) class probabilities."""
        if not self._trained:
            raise NotTrainedError("DeepBeliefNetwork has not been fit")
        return self.head.predict_proba(self.transform(data))

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most probable class per sample."""
        return np.argmax(self.predict_proba(data), axis=1)

    def decision_batch(self, data: np.ndarray) -> np.ndarray:
        """Raw head logits for a strict (N, n_visible) batch.

        The whole stack runs as one GEMM per layer through the
        batch-size-invariant kernels, so row ``i`` is bitwise independent
        of the batch it rides in — the property the dark pipeline's
        reference-vs-batched equivalence tests rely on.
        """
        if not self._trained:
            raise NotTrainedError("DeepBeliefNetwork has not been fit")
        x = np.asarray(data, dtype=np.float64)
        if x.ndim != 2:
            raise ModelError(f"decision_batch needs (N, {self.n_visible}), got {x.shape}")
        return self.head.decision_batch(self.transform(x))

    def predict_batch(self, data: np.ndarray) -> np.ndarray:
        """Most probable class per row for a strict (N, n_visible) batch."""
        return np.argmax(self.decision_batch(data), axis=1)

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        y = np.asarray(labels, dtype=np.int64).ravel()
        return float(np.mean(self.predict(data) == y))
