"""Linear SVM trained by dual coordinate descent — the LibLINEAR algorithm.

The paper trains its day / dusk / combined vehicle models and the pedestrian
model with LibLINEAR [16].  This module implements LibLINEAR's default
solver, dual coordinate descent for L2-regularised L1- or L2-loss SVC
(Hsieh et al., ICML 2008), from scratch on numpy:

    min_a  1/2 a^T Q a - e^T a
    s.t.   0 <= a_i <= U          (U = C for L1 loss, inf for L2 loss)

with Q_ij = y_i y_j x_i.x_j (+ diag D/(2C) for L2 loss), maintaining
w = sum_i a_i y_i x_i so every coordinate update is O(D).

A bias term is handled LibLINEAR-style by augmenting each sample with a
constant feature of 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.ml.linear import LinearModel, validate_training_set
from repro.rng import make_rng


@dataclass(frozen=True)
class SvmConfig:
    """Solver parameters.

    Attributes:
        c: Regularisation strength (LibLINEAR -c), larger = less regularised.
        loss: "l2" (default, LibLINEAR -s 1) or "l1" hinge loss.
        tolerance: Stop when the projected-gradient spread falls below this.
        max_iter: Hard cap on outer epochs over the data.
        bias_scale: Value of the augmented bias feature (LibLINEAR -B).
        seed: RNG seed for coordinate permutation.
    """

    c: float = 1.0
    loss: str = "l2"
    tolerance: float = 1e-3
    max_iter: int = 1000
    bias_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise ModelError(f"C must be positive, got {self.c}")
        if self.loss not in ("l1", "l2"):
            raise ModelError(f"loss must be 'l1' or 'l2', got {self.loss!r}")
        if self.tolerance <= 0:
            raise ModelError(f"tolerance must be positive, got {self.tolerance}")
        if self.max_iter < 1:
            raise ModelError(f"max_iter must be >= 1, got {self.max_iter}")
        if self.bias_scale < 0:
            raise ModelError(f"bias_scale must be >= 0, got {self.bias_scale}")


class LinearSvm:
    """L2-regularised linear SVM with a LibLINEAR-style dual solver."""

    def __init__(self, config: SvmConfig | None = None):
        self.config = config or SvmConfig()

    def train(self, features: np.ndarray, labels: np.ndarray, name: str = "svm") -> LinearModel:
        """Fit on (N, D) features with +1/-1 labels; returns a LinearModel.

        The returned model's ``meta`` records solver statistics (epochs,
        final PG spread, support-vector count) and the given model ``name``
        so experiment reports can identify day/dusk/combined models.
        """
        x, y = validate_training_set(features, labels)
        cfg = self.config
        n, d = x.shape
        if cfg.bias_scale > 0:
            x = np.hstack([x, np.full((n, 1), cfg.bias_scale)])
        rng = make_rng(cfg.seed)

        if cfg.loss == "l1":
            upper = cfg.c
            diag = 0.0
        else:  # l2 loss
            upper = np.inf
            diag = 1.0 / (2.0 * cfg.c)

        sq_norm = np.einsum("ij,ij->i", x, x) + diag
        alpha = np.zeros(n)
        w = np.zeros(x.shape[1])
        epochs = 0
        pg_spread = np.inf
        # Shrinking bounds on the projected gradient, as in LibLINEAR.
        pg_max_old, pg_min_old = np.inf, -np.inf
        active = np.arange(n)
        for epoch in range(cfg.max_iter):
            epochs = epoch + 1
            rng.shuffle(active)
            pg_max, pg_min = -np.inf, np.inf
            survivors = []
            for i in active:
                grad = y[i] * (x[i] @ w) - 1.0 + diag * alpha[i]
                # Projected gradient.
                if alpha[i] == 0.0:
                    if grad > pg_max_old:
                        continue  # shrink
                    pg = min(grad, 0.0)
                elif alpha[i] >= upper:
                    if grad < pg_min_old:
                        continue  # shrink
                    pg = max(grad, 0.0)
                else:
                    pg = grad
                survivors.append(i)
                pg_max = max(pg_max, pg)
                pg_min = min(pg_min, pg)
                if abs(pg) > 1e-14:
                    old = alpha[i]
                    alpha[i] = min(max(old - grad / sq_norm[i], 0.0), upper)
                    delta = (alpha[i] - old) * y[i]
                    if delta != 0.0:
                        w += delta * x[i]
            pg_spread = pg_max - pg_min
            if pg_spread <= cfg.tolerance:
                if len(survivors) == n:
                    break
                # Converged on the shrunken set; re-activate everything.
                active = np.arange(n)
                pg_max_old, pg_min_old = np.inf, -np.inf
                continue
            active = np.asarray(survivors if survivors else range(n))
            pg_max_old = pg_max if pg_max > 0 else np.inf
            pg_min_old = pg_min if pg_min < 0 else -np.inf

        if cfg.bias_scale > 0:
            weights, bias = w[:-1], float(w[-1] * cfg.bias_scale)
        else:
            weights, bias = w, 0.0
        return LinearModel(
            weights=weights,
            bias=bias,
            meta={
                "name": name,
                "solver": f"dual-cd-{cfg.loss}",
                "c": cfg.c,
                "epochs": epochs,
                "pg_spread": float(pg_spread),
                "n_support": int(np.count_nonzero(alpha > 1e-12)),
                "n_train": n,
                "n_features": d,
            },
        )


def decision_batch(
    model: LinearModel, features: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Margins of a trained SVM over a strict (N, D) window batch.

    The sliding-window entry point: one batch-invariant GEMV over the dense
    feature matrix replaces N per-window classifier calls.  Delegates to
    :meth:`repro.ml.linear.LinearModel.decision_batch`; exists here so the
    SVM hot path has an importable, greppable front door next to the
    trainer that produced the model.
    """
    return model.decision_batch(features, out=out)


def train_svm(
    features: np.ndarray,
    labels: np.ndarray,
    c: float = 1.0,
    name: str = "svm",
    **kwargs,
) -> LinearModel:
    """Convenience wrapper: train a LinearSvm with the given C."""
    return LinearSvm(SvmConfig(c=c, **kwargs)).train(features, labels, name=name)
