"""Batch-size-invariant affine kernels for inference hot paths.

Every batched scorer in the repository (SVM margins, softmax logits, RBM
pre-activations) funnels through these two functions, and so does every
*single-window* scorer — the reference paths simply call the same kernel
with a one-row matrix.  That shared funnel is what makes the differential
equivalence suite (``tests/equivalence``) meaningful: batched and
per-window evaluation produce **byte-identical** floats, not merely close
ones.

Why ``np.einsum`` and not ``@``: BLAS dispatches ``(N, D) @ (D,)`` /
``(N, D) @ (D, H)`` to different GEMV/GEMM micro-kernels depending on the
batch size ``N`` (an ``N == 1`` product is special-cased to a dot), and
those micro-kernels accumulate partial sums in different orders.  The same
window scored alone and scored inside a batch then differs in the last
ulp — enough to flip a window sitting exactly on a decision threshold and
break replayability.  ``np.einsum`` compiles to one fixed-order summation
loop over the reduction axis, applied independently per output element, so
its result for row ``i`` does not depend on how many other rows ride along
in the batch.  (This invariance is pinned by hypothesis property tests in
``tests/equivalence/test_kernel_invariance.py``.)

The cost is modest — roughly 2x a tuned GEMV for HOG-sized vectors — and
is dwarfed by the 10-100x won by batching windows at all; see PERF.md.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def ensure_rows(features: np.ndarray, n_features: int, name: str = "features") -> np.ndarray:
    """Validate a strict 2-D ``(N, n_features)`` float64 batch."""
    arr = np.asarray(features, dtype=np.float64)
    if arr.ndim != 2:
        raise ModelError(f"{name} must be 2-D (N, {n_features}), got shape {arr.shape}")
    if arr.shape[1] != n_features:
        raise ModelError(
            f"{name} width {arr.shape[1]} != expected dimension {n_features}"
        )
    return arr


def affine_rows(
    features: np.ndarray,
    weights: np.ndarray,
    bias: float = 0.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``features @ weights + bias`` for (N, D) x (D,) -> (N,), batch-invariant.

    Args:
        features: (N, D) row batch.
        weights: (D,) weight vector.
        bias: Scalar added to every output.
        out: Optional preallocated (N,) float64 output buffer.

    Returns:
        (N,) decision values; row ``i`` is bitwise independent of ``N``.
    """
    x = np.asarray(features, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if x.ndim != 2 or w.ndim != 1 or x.shape[1] != w.size:
        raise ModelError(
            f"affine_rows needs (N, D) x (D,), got {x.shape} x {w.shape}"
        )
    values = np.einsum("nd,d->n", x, w, out=out)
    values += bias
    return values


def affine_matrix(
    features: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``features @ weights + bias`` for (N, D) x (D, H) -> (N, H), batch-invariant.

    Args:
        features: (N, D) row batch.
        weights: (D, H) weight matrix.
        bias: Optional (H,) bias row added to every output row.
        out: Optional preallocated (N, H) float64 output buffer.

    Returns:
        (N, H) pre-activations; row ``i`` is bitwise independent of ``N``.
    """
    x = np.asarray(features, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if x.ndim != 2 or w.ndim != 2 or x.shape[1] != w.shape[0]:
        raise ModelError(
            f"affine_matrix needs (N, D) x (D, H), got {x.shape} x {w.shape}"
        )
    values = np.einsum("nd,dh->nh", x, w, out=out)
    if bias is not None:
        values += np.asarray(bias, dtype=np.float64)
    return values


def square_norm_rows(rows: np.ndarray) -> np.ndarray:
    """Per-row squared L2 norm, batch-invariant (einsum, fixed-order sum)."""
    x = np.asarray(rows, dtype=np.float64)
    if x.ndim != 2:
        raise ModelError(f"square_norm_rows needs a 2-D batch, got shape {x.shape}")
    return np.einsum("nd,nd->n", x, x)
