"""Softmax / logistic output layer used as the DBN's supervised head.

The DBN of the paper has "a final output layer [of] 4 nodes which determine
the size and shape class of taillights" — a multinomial classifier stacked on
the top RBM's hidden activations.  Trained with plain batch gradient descent
on the cross-entropy loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError, NotTrainedError
from repro.ml.kernels import affine_matrix, ensure_rows
from repro.rng import make_rng


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    arr = np.asarray(logits, dtype=np.float64)
    shifted = arr - arr.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic function, stable for large |x|."""
    arr = np.asarray(x, dtype=np.float64)
    out = np.empty_like(arr)
    pos = arr >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-arr[pos]))
    expx = np.exp(arr[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """(N,) int labels -> (N, n_classes) one-hot floats."""
    y = np.asarray(labels, dtype=np.int64).ravel()
    if y.size == 0:
        raise ModelError("labels must be non-empty")
    if y.min() < 0 or y.max() >= n_classes:
        raise ModelError(f"labels must be in [0, {n_classes}), got range [{y.min()}, {y.max()}]")
    out = np.zeros((y.size, n_classes), dtype=np.float64)
    out[np.arange(y.size), y] = 1.0
    return out


@dataclass
class SoftmaxConfig:
    """Training parameters for the softmax layer."""

    learning_rate: float = 0.5
    epochs: int = 200
    l2: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ModelError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs < 1:
            raise ModelError(f"epochs must be >= 1, got {self.epochs}")
        if self.l2 < 0:
            raise ModelError(f"l2 must be >= 0, got {self.l2}")


@dataclass
class SoftmaxLayer:
    """Multinomial logistic regression: ``p = softmax(x W + b)``."""

    n_inputs: int
    n_classes: int
    config: SoftmaxConfig = field(default_factory=SoftmaxConfig)

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_classes < 2:
            raise ModelError(
                f"need n_inputs >= 1 and n_classes >= 2, got {self.n_inputs}, {self.n_classes}"
            )
        rng = make_rng(self.config.seed)
        self.weights = rng.normal(0.0, 0.01, size=(self.n_inputs, self.n_classes))
        self.bias = np.zeros(self.n_classes)
        self._trained = False

    def fit(self, features: np.ndarray, labels: np.ndarray) -> list[float]:
        """Batch gradient descent on cross-entropy; returns the loss trace."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_inputs:
            raise ModelError(f"features must be (N, {self.n_inputs}), got {x.shape}")
        targets = one_hot(labels, self.n_classes)
        if targets.shape[0] != x.shape[0]:
            raise ModelError("features and labels must align")
        cfg = self.config
        n = x.shape[0]
        losses: list[float] = []
        for _ in range(cfg.epochs):
            probs = softmax(x @ self.weights + self.bias)
            err = probs - targets
            grad_w = x.T @ err / n + cfg.l2 * self.weights
            grad_b = err.mean(axis=0)
            self.weights -= cfg.learning_rate * grad_w
            self.bias -= cfg.learning_rate * grad_b
            loss = -np.mean(np.sum(targets * np.log(probs + 1e-12), axis=1))
            losses.append(float(loss + 0.5 * cfg.l2 * np.sum(self.weights**2)))
        self._trained = True
        return losses

    def decision_batch(self, features: np.ndarray) -> np.ndarray:
        """Raw logits for a strict (N, n_inputs) batch — one GEMM, no loop.

        Routed through the batch-size-invariant kernel so a row's logits do
        not depend on how many other rows share the batch (the contract the
        equivalence suite pins for the DBN sliding-window scan).
        """
        if not self._trained:
            raise NotTrainedError("SoftmaxLayer has not been fit")
        x = ensure_rows(features, self.n_inputs)
        return affine_matrix(x, self.weights, self.bias)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """(N, n_classes) class probabilities."""
        if not self._trained:
            raise NotTrainedError("SoftmaxLayer has not been fit")
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if x.shape[1] != self.n_inputs:
            raise ModelError(f"features must be (N, {self.n_inputs}), got {x.shape}")
        return softmax(self.decision_batch(x))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.predict_proba(features), axis=1)
