"""Feature scaling helpers for classifier inputs."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, NotTrainedError


class StandardScaler:
    """Per-feature zero-mean / unit-variance scaling.

    The taillight-pair SVM operates on heterogeneous geometric features
    (pixel distances, area ratios, angles); standardising them keeps the
    dual solver well-conditioned.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 1:
            raise ModelError(f"features must be a non-empty (N, D) array, got {x.shape}")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant features scale to 1 so they pass through (centred) untouched.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotTrainedError("StandardScaler has not been fit")
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if x.shape[1] != self.mean_.size:
            raise ModelError(
                f"feature width {x.shape[1]} != fitted width {self.mean_.size}"
            )
        return (x - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class MinMaxScaler:
    """Per-feature scaling into [0, 1] (used to binarise DBN inputs)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 1:
            raise ModelError(f"features must be a non-empty (N, D) array, got {x.shape}")
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        self.range_ = np.where(span > 1e-12, span, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotTrainedError("MinMaxScaler has not been fit")
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if x.shape[1] != self.min_.size:
            raise ModelError(
                f"feature width {x.shape[1]} != fitted width {self.min_.size}"
            )
        return np.clip((x - self.min_) / self.range_, 0.0, 1.0)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
