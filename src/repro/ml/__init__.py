"""Machine-learning substrate: linear SVM (LibLINEAR-style), RBM, DBN."""

from repro.ml.data import balance_classes, shuffle_together, train_test_split
from repro.ml.dbn import PAPER_DBN_CLASSES, PAPER_DBN_LAYERS, DbnConfig, DeepBeliefNetwork
from repro.ml.kernels import affine_matrix, affine_rows, ensure_rows, square_norm_rows
from repro.ml.linear import LinearModel, require_trained, validate_training_set
from repro.ml.logistic import SoftmaxConfig, SoftmaxLayer, one_hot, sigmoid, softmax
from repro.ml.model_io import load_dbn, load_linear_model, save_dbn, save_linear_model
from repro.ml.rbm import Rbm, RbmConfig
from repro.ml.scaler import MinMaxScaler, StandardScaler
from repro.ml.svm import LinearSvm, SvmConfig, train_svm

__all__ = [
    "DbnConfig",
    "DeepBeliefNetwork",
    "LinearModel",
    "LinearSvm",
    "MinMaxScaler",
    "PAPER_DBN_CLASSES",
    "PAPER_DBN_LAYERS",
    "Rbm",
    "RbmConfig",
    "SoftmaxConfig",
    "SoftmaxLayer",
    "StandardScaler",
    "SvmConfig",
    "affine_matrix",
    "affine_rows",
    "balance_classes",
    "ensure_rows",
    "square_norm_rows",
    "load_dbn",
    "load_linear_model",
    "one_hot",
    "require_trained",
    "save_dbn",
    "save_linear_model",
    "shuffle_together",
    "sigmoid",
    "softmax",
    "train_svm",
    "train_test_split",
    "validate_training_set",
]
