"""Serialisation of trained models.

Linear models save to a small JSON+base64 format (the "Trained Model" block
RAM contents of the hardware, effectively); DBNs save via ``npz``.  All
loaders validate shapes before constructing objects.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.ml.dbn import DbnConfig, DeepBeliefNetwork
from repro.ml.linear import LinearModel


def _encode_array(arr: np.ndarray) -> dict:
    data = np.ascontiguousarray(arr, dtype=np.float64)
    return {
        "shape": list(data.shape),
        "data": base64.b64encode(data.tobytes()).decode("ascii"),
    }


def _decode_array(obj: dict) -> np.ndarray:
    raw = base64.b64decode(obj["data"])
    arr = np.frombuffer(raw, dtype=np.float64).copy()
    expected = int(np.prod(obj["shape"])) if obj["shape"] else 1
    if arr.size != expected:
        raise ModelError(f"corrupt array payload: {arr.size} values for shape {obj['shape']}")
    return arr.reshape(obj["shape"])


def save_linear_model(model: LinearModel, path: str | Path) -> None:
    """Write a LinearModel to a JSON file."""
    payload = {
        "format": "repro-linear-model",
        "version": 1,
        "weights": _encode_array(model.weights),
        "bias": model.bias,
        "label_positive": model.label_positive,
        "label_negative": model.label_negative,
        "meta": model.meta,
    }
    Path(path).write_text(json.dumps(payload))


def load_linear_model(path: str | Path) -> LinearModel:
    """Read a LinearModel written by :func:`save_linear_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-linear-model":
        raise ModelError(f"{path} is not a repro linear model file")
    return LinearModel(
        weights=_decode_array(payload["weights"]),
        bias=float(payload["bias"]),
        label_positive=int(payload["label_positive"]),
        label_negative=int(payload["label_negative"]),
        meta=dict(payload.get("meta", {})),
    )


def save_dbn(dbn: DeepBeliefNetwork, path: str | Path) -> None:
    """Write a trained DBN's parameters to an ``npz`` archive."""
    arrays: dict[str, np.ndarray] = {
        "layers": np.asarray(dbn.config.layers, dtype=np.int64),
        "n_classes": np.asarray([dbn.config.n_classes], dtype=np.int64),
        "head_weights": dbn.head.weights,
        "head_bias": dbn.head.bias,
    }
    for i, rbm in enumerate(dbn.rbms):
        arrays[f"rbm{i}_weights"] = rbm.weights
        arrays[f"rbm{i}_vbias"] = rbm.visible_bias
        arrays[f"rbm{i}_hbias"] = rbm.hidden_bias
    np.savez(Path(path), **arrays)


def load_dbn(path: str | Path) -> DeepBeliefNetwork:
    """Read a DBN written by :func:`save_dbn`; it loads ready for inference."""
    with np.load(Path(path)) as archive:
        layers = tuple(int(v) for v in archive["layers"])
        n_classes = int(archive["n_classes"][0])
        dbn = DeepBeliefNetwork(DbnConfig(layers=layers, n_classes=n_classes))
        for i, rbm in enumerate(dbn.rbms):
            weights = archive[f"rbm{i}_weights"]
            if weights.shape != rbm.weights.shape:
                raise ModelError(
                    f"layer {i} weight shape {weights.shape} != expected {rbm.weights.shape}"
                )
            rbm.weights = weights
            rbm.visible_bias = archive[f"rbm{i}_vbias"]
            rbm.hidden_bias = archive[f"rbm{i}_hbias"]
        head_w = archive["head_weights"]
        if head_w.shape != dbn.head.weights.shape:
            raise ModelError(
                f"head weight shape {head_w.shape} != expected {dbn.head.weights.shape}"
            )
        dbn.head.weights = head_w
        dbn.head.bias = archive["head_bias"]
        dbn.head._trained = True
        dbn._trained = True
    return dbn
