"""Canned fault scenarios for drives, demos, and the smoke suite.

Each factory returns a fresh :class:`FaultPlan` scripted against a drive of
``duration_s`` seconds (windows scale with the duration, so the same
scenario stresses a 30 s smoke drive and a 30 min endurance run alike).
``worst_case`` stacks every injection site at once — the acceptance
scenario: the drive must complete, the pedestrian partition must process
every frame, and every fault must appear in the drive's audit trail.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FaultInjectionError
from repro.faults.plan import ANY_TARGET, FaultPlan, FaultSite, FaultSpec


def flaky_dma(duration_s: float = 60.0) -> FaultPlan:
    """Vehicle frame DMA aborts a few transfers, then stalls one."""
    return FaultPlan(
        [
            FaultSpec(
                site=FaultSite.DMA_ERROR,
                target="dma-veh-mm2s",
                start_s=duration_s * 0.2,
                end_s=duration_s * 0.4,
                max_firings=3,
            ),
            FaultSpec(
                site=FaultSite.DMA_STALL,
                target="dma-veh-mm2s",
                start_s=duration_s * 0.6,
                end_s=duration_s * 0.7,
                magnitude=0.08,
                max_firings=1,
            ),
        ],
        name="flaky_dma",
    )


def corrupt_bitstream(duration_s: float = 60.0) -> FaultPlan:
    """The dark bitstream is damaged in PL DDR; first load must fail."""
    return FaultPlan(
        [
            FaultSpec(
                site=FaultSite.BITSTREAM_CORRUPT,
                target="dark",
                max_firings=1,
            )
        ],
        name="corrupt_bitstream",
    )


def pr_timeout(duration_s: float = 60.0) -> FaultPlan:
    """The first reconfiguration stalls past the watchdog deadline."""
    return FaultPlan(
        [
            FaultSpec(
                site=FaultSite.PR_STALL,
                target=ANY_TARGET,
                magnitude=5.0,
                max_firings=1,
            )
        ],
        name="pr_timeout",
    )


def sensor_blackout(duration_s: float = 60.0) -> FaultPlan:
    """The light sensor holds its register for a stretch, then glitches."""
    return FaultPlan(
        [
            FaultSpec(
                site=FaultSite.SENSOR_DROPOUT,
                target="sensor",
                start_s=duration_s * 0.3,
                end_s=duration_s * 0.45,
            ),
            FaultSpec(
                site=FaultSite.SENSOR_SPIKE,
                target="sensor",
                start_s=duration_s * 0.55,
                end_s=duration_s * 0.6,
                magnitude=45000.0,
                max_firings=2,
            ),
        ],
        name="sensor_blackout",
    )


def detector_crash(duration_s: float = 60.0) -> FaultPlan:
    """The vehicle detector throws on a burst of frames mid-drive."""
    return FaultPlan(
        [
            FaultSpec(
                site=FaultSite.PIPELINE_EXCEPTION,
                target="vehicle",
                start_s=duration_s * 0.5,
                end_s=duration_s * 0.52,
                max_firings=10,
            )
        ],
        name="detector_crash",
    )


def worst_case(duration_s: float = 60.0) -> FaultPlan:
    """Every injection site at once — the acceptance scenario."""
    specs: list[FaultSpec] = []
    for factory in (flaky_dma, corrupt_bitstream, pr_timeout, sensor_blackout, detector_crash):
        specs.extend(factory(duration_s).specs)
    return FaultPlan(specs, name="worst_case")


SCENARIOS: dict[str, Callable[[float], FaultPlan]] = {
    "flaky_dma": flaky_dma,
    "corrupt_bitstream": corrupt_bitstream,
    "pr_timeout": pr_timeout,
    "sensor_blackout": sensor_blackout,
    "detector_crash": detector_crash,
    "worst_case": worst_case,
}


def get_scenario(name: str, duration_s: float = 60.0) -> FaultPlan:
    """A fresh plan for one canned scenario (fresh = all specs re-armed)."""
    if name not in SCENARIOS:
        raise FaultInjectionError(
            f"unknown fault scenario {name!r} (canned: {sorted(SCENARIOS)})"
        )
    return SCENARIOS[name](duration_s)
