"""Deterministic, seedable fault plans for the detection stack.

A :class:`FaultPlan` is a declarative script of failures: each
:class:`FaultSpec` names an injection *site* (a DMA engine, the bitstream
store, the PR controller, the light sensor, a detector pipeline), a target
within that site, a time window, and an optional magnitude (stall seconds,
spike lux, ...).  Components that support injection consult the plan at
their decision points via :meth:`FaultPlan.fire`; every firing is recorded
as a :class:`FaultEvent` so a drive is fully auditable.

Plans contain no hidden randomness: :meth:`FaultPlan.random` pre-generates
specs from a seed, and queries never touch an RNG, so two drives with the
same plan and sensor seed replay byte-identically.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import FaultInjectionError
from repro.rng import make_rng


class FaultSite(enum.Enum):
    """Named injection sites across the SoC / adaptation stack."""

    DMA_ERROR = "dma-error"            # transfer aborts, error IRQ
    DMA_STALL = "dma-stall"            # transfer setup delayed by magnitude
    BITSTREAM_CORRUPT = "bitstream-corrupt"  # payload damaged in PL DDR
    PR_STALL = "pr-stall"              # ICAP stream stalls for magnitude s
    SENSOR_DROPOUT = "sensor-dropout"  # sensor holds its last register
    SENSOR_SPIKE = "sensor-spike"      # sensor returns magnitude lux
    PIPELINE_EXCEPTION = "pipeline-exception"  # detector raises on a frame


#: Target wildcard: matches any target name presented at the site.
ANY_TARGET = "*"


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure: a site, a target, a window, a magnitude.

    Attributes:
        site: Where the fault injects.
        target: Component name at the site ("dma-veh-mm2s", "dark",
            "vehicle", ...) or :data:`ANY_TARGET`.
        start_s: Window start (inclusive).
        end_s: Window end (exclusive); ``inf`` = open-ended.
        magnitude: Site-specific severity — stall seconds for
            DMA_STALL/PR_STALL, reported lux for SENSOR_SPIKE.
        max_firings: Cap on how many times this spec may fire
            (``None`` = every consult inside the window).
    """

    site: FaultSite
    target: str = ANY_TARGET
    start_s: float = 0.0
    end_s: float = math.inf
    magnitude: float = 0.0
    max_firings: int | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise FaultInjectionError(f"start_s must be >= 0, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise FaultInjectionError(
                f"window must be non-empty, got [{self.start_s}, {self.end_s})"
            )
        if self.magnitude < 0:
            raise FaultInjectionError(f"magnitude must be >= 0, got {self.magnitude}")
        if self.max_firings is not None and self.max_firings < 1:
            raise FaultInjectionError(f"max_firings must be >= 1, got {self.max_firings}")

    def matches(self, site: FaultSite, target: str, time_s: float) -> bool:
        return (
            self.site is site
            and (self.target == ANY_TARGET or self.target == target)
            and self.start_s <= time_s < self.end_s
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as it happened."""

    time_s: float
    site: FaultSite
    target: str
    detail: str = ""

    def label(self) -> str:
        base = f"fault:{self.site.value}@{self.target}"
        return f"{base}({self.detail})" if self.detail else base


@dataclass(frozen=True)
class DegradationEvent:
    """One graceful-degradation action taken in response to a fault."""

    time_s: float
    kind: str
    detail: str = ""

    def label(self) -> str:
        base = f"degrade:{self.kind}"
        return f"{base}({self.detail})" if self.detail else base


class FaultPlan:
    """A deterministic script of faults plus the audit log of firings."""

    def __init__(self, specs: Iterable[FaultSpec] = (), name: str = "custom"):
        self.name = name
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.events: list[FaultEvent] = []
        self._firings: dict[int, int] = {}
        self.listeners: list[Callable[[FaultEvent], None]] = []

    def __len__(self) -> int:
        return len(self.specs)

    def _armed(self, index: int) -> bool:
        spec = self.specs[index]
        if spec.max_firings is None:
            return True
        return self._firings.get(index, 0) < spec.max_firings

    def active(self, site: FaultSite, target: str, time_s: float) -> FaultSpec | None:
        """First armed spec matching (site, target, time); does not fire."""
        for i, spec in enumerate(self.specs):
            if spec.matches(site, target, time_s) and self._armed(i):
                return spec
        return None

    def any_active(self, time_s: float, slack_s: float = 0.0) -> bool:
        """True when any spec's window covers ``time_s`` (plus trailing
        ``slack_s`` — stalls keep hurting after their window closes)."""
        return any(
            spec.start_s <= time_s < spec.end_s + slack_s for spec in self.specs
        )

    def fire(
        self, site: FaultSite, target: str, time_s: float, detail: str = ""
    ) -> FaultSpec | None:
        """Consume one firing at (site, target, time); logs the event.

        Returns the matched spec, or ``None`` when no armed spec covers the
        site/target/time — the component proceeds normally in that case.
        """
        for i, spec in enumerate(self.specs):
            if spec.matches(site, target, time_s) and self._armed(i):
                self._firings[i] = self._firings.get(i, 0) + 1
                event = FaultEvent(time_s=time_s, site=site, target=target, detail=detail)
                self.events.append(event)
                for listener in self.listeners:
                    listener(event)
                return spec
        return None

    def bind_telemetry(self, telemetry) -> Callable[[FaultEvent], None]:
        """Mirror every firing into a telemetry session.

        Each fault becomes a typed tracer event — tagged onto the enclosing
        span when one is open (e.g. the drive's per-frame span) — and bumps
        the ``faults_total{site=...}`` counter.  Returns the listener so a
        caller can remove it from :attr:`listeners` again.
        """

        def on_fault(event: FaultEvent) -> None:
            telemetry.event(
                "fault",
                time_s=event.time_s,
                site=event.site.value,
                target=event.target,
                detail=event.detail,
            )
            telemetry.counter("faults_total", site=event.site.value).inc()

        self.listeners.append(on_fault)
        return on_fault

    def firings(self) -> int:
        """Total number of fault firings so far."""
        return len(self.events)

    def reset(self) -> None:
        """Re-arm every spec and clear the audit log (fresh replay)."""
        self.events.clear()
        self._firings.clear()

    @classmethod
    def random(
        cls,
        seed: int,
        duration_s: float,
        n_faults: int = 6,
        sites: Sequence[FaultSite] | None = None,
        name: str | None = None,
    ) -> "FaultPlan":
        """A seeded random plan over ``[0, duration_s)``.

        All randomness happens here, at construction: the generated specs
        are plain data, so the plan itself stays deterministic at query
        time.  Magnitudes are drawn per-site at severities that matter
        (stalls of tens of ms to seconds, spikes across lighting regimes).
        """
        if duration_s <= 0:
            raise FaultInjectionError(f"duration_s must be positive, got {duration_s}")
        if n_faults < 0:
            raise FaultInjectionError(f"n_faults must be >= 0, got {n_faults}")
        rng = make_rng(seed)
        pool = tuple(sites) if sites is not None else tuple(FaultSite)
        specs: list[FaultSpec] = []
        for _ in range(n_faults):
            site = pool[int(rng.integers(len(pool)))]
            start = float(rng.uniform(0.0, duration_s * 0.9))
            width = float(rng.uniform(0.02, max(0.05, duration_s * 0.2)))
            magnitude = 0.0
            max_firings: int | None = None
            if site in (FaultSite.DMA_STALL, FaultSite.PR_STALL):
                magnitude = float(rng.uniform(0.01, 2.0))
                max_firings = 1
            elif site is FaultSite.SENSOR_SPIKE:
                magnitude = float(10 ** rng.uniform(-1.0, 4.8))
                max_firings = int(rng.integers(1, 4))
            elif site in (FaultSite.DMA_ERROR, FaultSite.BITSTREAM_CORRUPT):
                max_firings = int(rng.integers(1, 3))
            specs.append(
                FaultSpec(
                    site=site,
                    target=ANY_TARGET,
                    start_s=start,
                    end_s=start + width,
                    magnitude=magnitude,
                    max_firings=max_firings,
                )
            )
        return cls(specs, name=name or f"random-{seed}")
