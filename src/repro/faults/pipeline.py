"""Fault-injecting wrapper around any :class:`DetectionPipeline`.

Wraps a detector so that frames scheduled by a :class:`FaultPlan` raise
:class:`PipelineError` instead of returning detections — the raw material
for testing that callers degrade gracefully rather than crash the stream.
The wrapper keeps its own frame clock (``frame_period_s`` per ``detect``
call) so plans written in seconds apply to pipelines that only see frames.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError
from repro.faults.plan import FaultPlan, FaultSite
from repro.pipelines.base import Detection


class FaultyPipeline:
    """A DetectionPipeline proxy that raises on plan-scheduled frames."""

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        frame_period_s: float = 0.02,
        target: str | None = None,
    ):
        self.inner = inner
        self.plan = plan
        self.frame_period_s = frame_period_s
        self.target = target or inner.name
        self.name = inner.name
        self.frames_seen = 0
        self.frames_failed = 0

    @property
    def clock_s(self) -> float:
        """Synthetic time of the next frame."""
        return self.frames_seen * self.frame_period_s

    def detect(self, frame: np.ndarray) -> list[Detection]:
        t = self.clock_s
        self.frames_seen += 1
        if self.plan.fire(FaultSite.PIPELINE_EXCEPTION, self.target, t) is not None:
            self.frames_failed += 1
            raise PipelineError(
                f"{self.name}: injected exception on frame {self.frames_seen - 1}"
            )
        return self.inner.detect(frame)

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        return self.inner.classify_crop(crop)
