"""Fault injection and graceful degradation for the detection stack.

See FAULTS.md at the repository root for the injection-site map and the
degradation policy this package drives.
"""

from repro.faults.pipeline import FaultyPipeline
from repro.faults.plan import (
    ANY_TARGET,
    DegradationEvent,
    FaultEvent,
    FaultPlan,
    FaultSite,
    FaultSpec,
)
from repro.faults.scenarios import SCENARIOS, get_scenario

__all__ = [
    "ANY_TARGET",
    "DegradationEvent",
    "FaultEvent",
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "FaultyPipeline",
    "SCENARIOS",
    "get_scenario",
]
