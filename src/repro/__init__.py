"""repro — reproduction of "Adaptive Vehicle Detection for Real-time
Autonomous Driving System" (Hemmati, Biglari-Abhari, Niar; DATE 2019).

Subpackages:

* :mod:`repro.imaging`   — image-processing substrate.
* :mod:`repro.features`  — HOG descriptor and sliding windows.
* :mod:`repro.ml`        — linear SVM (LibLINEAR-style), RBM, DBN.
* :mod:`repro.datasets`  — procedural stand-ins for UPM / SYSU / iROADS.
* :mod:`repro.pipelines` — day/dusk, dark, and pedestrian detectors.
* :mod:`repro.adaptive`  — light sensing and condition switching.
* :mod:`repro.hw`        — FPGA timing and resource models.
* :mod:`repro.zynq`      — discrete-event Zynq SoC and PR-controller models.
* :mod:`repro.core`      — the adaptive detection system (paper Fig. 6).
* :mod:`repro.faults`    — deterministic fault plans and scenarios.
* :mod:`repro.telemetry` — structured tracing, metrics, and exporters.
* :mod:`repro.experiments` — one runner per paper table/figure.
* :mod:`repro.analysis`  — reprolint, the project's static-analysis pass.
* :mod:`repro.rng`       — the sanctioned seeded-RNG construction point.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
