"""Shared experiment infrastructure: scaled corpora and cached models.

Experiments accept a ``scale`` in (0, 1]: 1.0 reproduces the paper's test
set sizes (slow: thousands of rendered crops); smaller scales shrink every
corpus proportionally for quick runs and CI.  Training artefacts are cached
per (scale, seed) so benchmarks that share models do not retrain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.datasets.samples import ClassificationDataset
from repro.datasets.synthetic import (
    SYSU_TEST_NEG,
    SYSU_TEST_POS,
    SYSU_TEST_VERY_DARK_POS,
    UPM_TEST_NEG,
    UPM_TEST_POS,
    make_sysu_like,
    make_upm_like,
)
from repro.errors import ConfigurationError
from repro.ml.linear import LinearModel
from repro.pipelines.day_dusk import DayDuskConfig, HogSvmVehicleDetector, train_condition_models

if TYPE_CHECKING:  # imported for annotations only; training imports stay lazy
    from repro.pipelines.dark import DarkVehicleDetector

# Training corpus sizes at scale 1.0 (the paper does not publish its train
# split sizes; 400+400 per corpus trains stable LibLINEAR models).
TRAIN_POS = 400
TRAIN_NEG = 400


def _scaled(n: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(math.ceil(n * scale)))


def check_scale(scale: float) -> float:
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    return scale


@dataclass
class ConditionCorpora:
    """Train and test corpora for the day/dusk experiments."""

    day_train: ClassificationDataset
    dusk_train: ClassificationDataset
    day_test: ClassificationDataset
    dusk_test: ClassificationDataset


def build_corpora(scale: float = 1.0, seed: int = 0) -> ConditionCorpora:
    """Render the four corpora at the requested scale."""
    check_scale(scale)
    return ConditionCorpora(
        day_train=make_upm_like(
            n_positive=_scaled(TRAIN_POS, scale),
            n_negative=_scaled(TRAIN_NEG, scale),
            seed=seed + 1,
        ),
        # The dusk training split under-covers the bright end of the dusk
        # distribution (t > 0.8): that coverage gap is what the day data
        # fills in the combined model, reproducing Table I's "combined
        # outperforms the other two models in dusk".
        dusk_train=make_sysu_like(
            n_positive=_scaled(TRAIN_POS, scale),
            n_negative=_scaled(TRAIN_NEG, scale),
            n_very_dark_positive=0,
            seed=seed + 2,
            lighting_t_range=(0.1, 0.8),
        ),
        day_test=make_upm_like(
            n_positive=_scaled(UPM_TEST_POS, scale),
            n_negative=_scaled(UPM_TEST_NEG, scale, minimum=2),
            seed=seed + 3,
        ),
        dusk_test=make_sysu_like(
            n_positive=_scaled(SYSU_TEST_POS, scale),
            n_negative=_scaled(SYSU_TEST_NEG, scale),
            n_very_dark_positive=_scaled(SYSU_TEST_VERY_DARK_POS, scale, minimum=2),
            seed=seed + 4,
        ),
    )


_MODEL_CACHE: dict[tuple[float, int], tuple[ConditionCorpora, dict[str, LinearModel]]] = {}


def corpora_and_models(scale: float = 1.0, seed: int = 0) -> tuple[ConditionCorpora, dict[str, LinearModel]]:
    """Corpora plus the three trained SVM models, cached per (scale, seed)."""
    key = (scale, seed)
    if key not in _MODEL_CACHE:
        corpora = build_corpora(scale=scale, seed=seed)
        models = train_condition_models(corpora.day_train, corpora.dusk_train)
        _MODEL_CACHE[key] = (corpora, models)
    return _MODEL_CACHE[key]


def detector_with(model: LinearModel, config: DayDuskConfig | None = None) -> HogSvmVehicleDetector:
    """A day/dusk detector bound to a trained model."""
    return HogSvmVehicleDetector(config).with_model(model)


_DARK_CACHE: dict[int, "DarkVehicleDetector"] = {}


def trained_dark_detector(seed: int = 11) -> "DarkVehicleDetector":
    """A trained DarkVehicleDetector, cached per seed."""
    from repro.pipelines.dark import DarkVehicleDetector

    if seed not in _DARK_CACHE:
        detector = DarkVehicleDetector()
        detector.train(seed=seed)
        _DARK_CACHE[seed] = detector
    return _DARK_CACHE[seed]
