"""Extension experiment — the paper's thesis, measured end to end.

The paper's argument for adaptivity is never printed as a single table, but
it is the point of the whole system: *no fixed pipeline covers all lighting
conditions, while the adaptive system tracks the best pipeline everywhere.*
This experiment renders frames along a day → dusk → dark drive, runs

* the adaptive detector (condition-routed, with reconfiguration blindness),
* each fixed pipeline (day model, dusk model, combined model, dark pipeline)

over the same frames, and reports per-condition and overall object recall.

A detail worth noticing in the result: the adaptive detector's dark recall
trails the *fixed* dark pipeline by exactly one frame — the frame consumed
by the dusk->dark partial reconfiguration.  Adaptivity's cost is visible
and bounded, exactly as Section IV-B argues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.functional import AdaptiveVehicleDetector, FunctionalConfig
from repro.datasets.lighting import LightingCondition, condition_for_lux, sample_lighting
from repro.datasets.scene import SceneConfig, render_scene
from repro.experiments.common import check_scale, corpora_and_models, detector_with, trained_dark_detector
from repro.experiments.tables import format_table, pct
from repro.imaging.geometry import Rect, match_detections
from repro.pipelines.base import Detection
from repro.pipelines.day_dusk import DayDuskConfig
from repro.rng import make_rng


@dataclass
class PipelineScore:
    """Recall tallies per lighting condition for one pipeline."""

    name: str
    matched: dict[str, int]
    total: dict[str, int]
    spurious: int = 0

    def recall(self, condition: str | None = None) -> float:
        if condition is None:
            num = sum(self.matched.values())
            den = sum(self.total.values())
        else:
            num = self.matched.get(condition, 0)
            den = self.total.get(condition, 0)
        return num / den if den else 0.0


@dataclass
class AdaptiveGainResult:
    scores: list[PipelineScore]
    n_frames: int

    def _by_name(self, name: str) -> PipelineScore:
        return next(s for s in self.scores if s.name == name)

    def render(self) -> str:
        conditions = ("day", "dusk", "dark")
        rows = []
        for score in self.scores:
            rows.append(
                [score.name]
                + [pct(score.recall(c)) for c in conditions]
                + [pct(score.recall()), score.spurious]
            )
        return format_table(
            ["pipeline", "day recall", "dusk recall", "dark recall", "overall", "spurious"],
            rows,
            title=f"Adaptive vs fixed pipelines over a mixed drive ({self.n_frames} frames)",
        )

    def shape_checks(self) -> dict[str, bool]:
        adaptive = self._by_name("adaptive")
        fixed = [s for s in self.scores if s.name != "adaptive"]
        best_fixed_overall = max(s.recall() for s in fixed)
        return {
            # The thesis: adaptivity beats every fixed choice overall.
            "adaptive_beats_every_fixed_pipeline": adaptive.recall() > best_fixed_overall,
            # And every fixed pipeline has a failure condition.
            "every_fixed_pipeline_fails_somewhere": all(
                min(s.recall(c) for c in ("day", "dusk", "dark")) < 0.5 for s in fixed
            ),
            # The adaptive system is not worst in any condition.
            "adaptive_never_worst": all(
                adaptive.recall(c) >= min(s.recall(c) for s in fixed) - 1e-9
                for c in ("day", "dusk", "dark")
            ),
        }


def run_adaptive_gain(
    n_frames_per_condition: int = 8,
    seed: int = 0,
    scale: float = 0.3,
) -> AdaptiveGainResult:
    """Render a mixed-condition frame stream and score all pipelines."""
    check_scale(scale)
    _, models = corpora_and_models(scale=scale, seed=seed)
    dark = trained_dark_detector()
    # Dense scanning wants a positive margin (crop classification uses 0).
    scan_config = DayDuskConfig(decision_threshold=1.0)
    adaptive = AdaptiveVehicleDetector(
        models,
        dark,
        config=FunctionalConfig(multiscale=True),
        day_dusk_config=scan_config,
    )

    rng = make_rng(seed + 101)

    # Three decisive blocks (deep inside each regime) so the adaptive
    # controller's hysteresis settles before the block's frames arrive —
    # the drive's *transition* cost is measured separately (RL bench).
    block_lux = {
        LightingCondition.DAY: 20_000.0,
        LightingCondition.DUSK: 60.0,
        LightingCondition.DARK: 0.8,
    }
    frames = []
    t = 0.0
    for condition in (LightingCondition.DAY, LightingCondition.DUSK, LightingCondition.DARK):
        for _ in range(n_frames_per_condition):
            t += 3.0
            lux = block_lux[condition]
            assert condition_for_lux(lux) is condition
            lighting = sample_lighting(condition, rng)
            config = SceneConfig(
                height=180,
                width=330,
                n_vehicles=1,
                # Day/dusk vehicles sized for the pyramid's 0.64x level;
                # dark vehicles sized so their lamps fit the DBN window.
                vehicle_fill=(0.26, 0.31)
                if condition is not LightingCondition.DARK
                else (0.11, 0.17),
                seed=int(rng.integers(0, 2**31)),
            )
            frames.append((t, lux, condition, render_scene(config, lighting)))

    fixed_pipelines = {
        "fixed day model": detector_with(models["day"], scan_config),
        "fixed dusk model": detector_with(models["dusk"], scan_config),
        "fixed combined model": detector_with(models["combined"], scan_config),
        "fixed dark pipeline": dark,
    }
    names = ["adaptive"] + list(fixed_pipelines)
    scores = {
        name: PipelineScore(name=name, matched={}, total={}) for name in names
    }

    def tally(
        name: str,
        condition: LightingCondition,
        truths: list[Rect],
        detections: list[Detection],
    ) -> None:
        score = scores[name]
        key = condition.value
        matches, unmatched_t, unmatched_d = match_detections(
            truths, [d.rect for d in detections], iou_threshold=0.25
        )
        score.matched[key] = score.matched.get(key, 0) + len(matches)
        score.total[key] = score.total.get(key, 0) + len(truths)
        score.spurious += len(unmatched_d)

    for t, lux, condition, frame in frames:
        truths = frame.vehicle_boxes
        result = adaptive.process(t, lux, frame.rgb)
        tally("adaptive", condition, truths, result.detections)
        for name, pipeline in fixed_pipelines.items():
            if name == "fixed dark pipeline":
                detections = pipeline.detect(frame.rgb)
            else:
                detections = pipeline.detect_multiscale(frame.rgb, max_levels=3)
            tally(name, condition, truths, detections)
    return AdaptiveGainResult(scores=list(scores.values()), n_frames=len(frames))
