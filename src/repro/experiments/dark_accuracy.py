"""Experiment D95 — Section III-B's dark-detection accuracy.

"For the purpose of evaluations, a subset of SYSU dataset was tested with
our detection method and accuracy of 95% is obtained.  We also evaluate our
method on a subset of iROADS dataset in very dark environments."

Two evaluations:

* crop-level accuracy of the full dark pipeline on a very dark crop corpus
  (the SYSU-subset stand-in) — the paper's 95 % number;
* frame-level evaluation on iROADS-like full frames with oncoming-headlight
  distractors, plus the HOG models' collapse on the same crops (the reason
  the dark configuration exists at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datasets.synthetic import make_dark_crops, make_iroads_like
from repro.experiments.common import check_scale, corpora_and_models, detector_with, trained_dark_detector
from repro.experiments.tables import format_table, pct
from repro.pipelines.evaluation import (
    ConfusionCounts,
    FrameEvaluation,
    evaluate_crop_classifier,
    evaluate_frames,
)

PAPER_DARK_ACCURACY = 0.95


@dataclass
class DarkAccuracyResult:
    """Measured dark-pipeline accuracy and the HOG baselines."""

    dark_pipeline_crops: ConfusionCounts
    hog_baselines: dict[str, ConfusionCounts]
    frames: FrameEvaluation
    scale: float

    def render(self) -> str:
        rows: list[list[object]] = [
            [
                "dark pipeline (DBN+pairing)",
                pct(self.dark_pipeline_crops.accuracy),
                self.dark_pipeline_crops.tp,
                self.dark_pipeline_crops.tn,
                self.dark_pipeline_crops.fp,
                self.dark_pipeline_crops.fn,
            ]
        ]
        for name, counts in self.hog_baselines.items():
            rows.append(
                [f"HOG+SVM ({name} model)", pct(counts.accuracy), counts.tp, counts.tn, counts.fp, counts.fn]
            )
        table = format_table(
            ["method", "accuracy", "TP", "TN", "FP", "FN"],
            rows,
            title=f"Dark-condition crop accuracy (paper: {pct(PAPER_DARK_ACCURACY)}; scale={self.scale})",
        )
        frame_line = (
            f"iROADS-like frames: frame accuracy {pct(self.frames.frame_accuracy)}, "
            f"object recall {pct(self.frames.object_recall)}, "
            f"spurious {self.frames.spurious} over {self.frames.frames_total} frames"
        )
        return table + "\n" + frame_line

    def shape_checks(self) -> dict[str, bool]:
        best_hog = max(c.accuracy for c in self.hog_baselines.values())
        return {
            "dark_pipeline_high_accuracy": self.dark_pipeline_crops.accuracy >= 0.85,
            "dark_pipeline_beats_hog": self.dark_pipeline_crops.accuracy > best_hog,
        }


def run_dark_accuracy(scale: float = 1.0, seed: int = 0, n_frames: int | None = None) -> DarkAccuracyResult:
    """Evaluate the dark pipeline (and HOG baselines) on dark data."""
    check_scale(scale)
    n_crops = max(10, int(math.ceil(100 * scale)))
    crops = make_dark_crops(n_positive=n_crops, n_negative=n_crops, seed=seed + 21)
    dark = trained_dark_detector()
    dark_counts = evaluate_crop_classifier(dark, crops)
    _, models = corpora_and_models(scale=min(scale, 0.5) if scale < 1.0 else 1.0, seed=seed)
    hog_counts = {
        name: evaluate_crop_classifier(detector_with(model), crops)
        for name, model in models.items()
    }
    if n_frames is None:
        n_frames = max(10, int(math.ceil(60 * scale)))
    frames = make_iroads_like(n_frames=n_frames, seed=seed + 22)
    frame_eval = evaluate_frames(dark, frames.frames, kind="vehicle", iou_threshold=0.25)
    return DarkAccuracyResult(
        dark_pipeline_crops=dark_counts,
        hog_baselines=hog_counts,
        frames=frame_eval,
        scale=scale,
    )
