"""Experiment T1 — paper Table I.

Trains the day, dusk, and combined SVM models and evaluates each against
the three test scenarios: day (UPM-like), dusk (SYSU-like), and the dusk
subset with the very dark samples excluded.  Reports accuracy and the raw
TP/TN/FP/FN counts, exactly the columns of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import check_scale, corpora_and_models, detector_with
from repro.experiments.tables import format_table, pct
from repro.pipelines.evaluation import ConfusionCounts, evaluate_crop_classifier

# The paper's Table I, for side-by-side comparison in reports:
# model -> scenario -> (accuracy, TP, TN, FP, FN)
PAPER_TABLE1 = {
    "day": {
        "day": (0.9600, 195, 21, 4, 5),
        "dusk": (0.7378, 659, 680, 72, 404),
        "dusk-subset": (0.7755, 650, 680, 72, 313),
    },
    "dusk": {
        "day": (0.2089, 23, 24, 1, 177),
        "dusk": (0.8237, 744, 751, 1, 319),
        "dusk-subset": (0.8688, 739, 751, 1, 224),
    },
    "combined": {
        "day": (0.9156, 185, 21, 4, 15),
        "dusk": (0.8534, 809, 740, 12, 254),
        "dusk-subset": (0.9009, 805, 740, 12, 158),
    },
}

SCENARIOS = ("day", "dusk", "dusk-subset")
MODELS = ("day", "dusk", "combined")


@dataclass
class Table1Result:
    """Measured Table I: counts per (model, scenario)."""

    cells: dict[str, dict[str, ConfusionCounts]]
    scale: float

    def accuracy(self, model: str, scenario: str) -> float:
        return self.cells[model][scenario].accuracy

    def render(self) -> str:
        headers = ["SVM Model"]
        for scenario in SCENARIOS:
            headers += [f"{scenario} acc", "TP", "TN", "FP", "FN"]
        rows = []
        for model in MODELS:
            row: list[object] = [model]
            for scenario in SCENARIOS:
                c = self.cells[model][scenario]
                row += [pct(c.accuracy), c.tp, c.tn, c.fp, c.fn]
            rows.append(row)
        return format_table(headers, rows, title=f"Table I (measured, scale={self.scale})")

    def render_with_paper(self) -> str:
        headers = ["SVM Model", "scenario", "accuracy", "paper", "TP", "TN", "FP", "FN"]
        rows = []
        for model in MODELS:
            for scenario in SCENARIOS:
                c = self.cells[model][scenario]
                paper_acc = PAPER_TABLE1[model][scenario][0]
                rows.append(
                    [model, scenario, pct(c.accuracy), pct(paper_acc), c.tp, c.tn, c.fp, c.fn]
                )
        return format_table(headers, rows, title=f"Table I vs paper (scale={self.scale})")

    def shape_checks(self) -> dict[str, bool]:
        """The qualitative claims the paper draws from Table I."""
        acc = self.accuracy
        return {
            # "the accuracy in the day is higher than in the dusk"
            "day_easier_than_dusk": acc("day", "day") > acc("combined", "dusk"),
            # "the best classifier model for detection in day is the day model"
            "day_model_best_on_day": acc("day", "day")
            >= max(acc("dusk", "day"), acc("combined", "day")) - 1e-9,
            # "Combined SVM model outperforms the other two models in dusk"
            "combined_best_on_dusk": acc("combined", "dusk")
            >= max(acc("day", "dusk"), acc("dusk", "dusk")) - 1e-9,
            # dusk model collapses on day with FN-dominated errors
            "dusk_model_degrades_on_day": acc("dusk", "day") < acc("day", "day") - 0.15
            and self.cells["dusk"]["day"].fn > self.cells["dusk"]["day"].fp,
            # "considerable improvement in the accuracy" on the subset
            "subset_improves_all_models": all(
                acc(m, "dusk-subset") >= acc(m, "dusk") for m in MODELS
            ),
        }


def run_table1(scale: float = 1.0, seed: int = 0) -> Table1Result:
    """Reproduce Table I at the given corpus scale (1.0 = paper sizes)."""
    check_scale(scale)
    corpora, models = corpora_and_models(scale=scale, seed=seed)
    dusk_subset = corpora.dusk_test.without_very_dark()
    cells: dict[str, dict[str, ConfusionCounts]] = {}
    for model_name in MODELS:
        detector = detector_with(models[model_name])
        cells[model_name] = {
            "day": evaluate_crop_classifier(detector, corpora.day_test),
            "dusk": evaluate_crop_classifier(detector, corpora.dusk_test),
            "dusk-subset": evaluate_crop_classifier(detector, dusk_subset),
        }
    return Table1Result(cells=cells, scale=scale)
