"""Experiment runners: one per paper table/figure plus ablations.

Every runner returns a result object with ``render()`` (the table/report
text) and ``shape_checks()`` (the qualitative claims the paper draws from
that artefact, as booleans).  Benchmarks and EXPERIMENTS.md are generated
from these.
"""

from repro.experiments.adaptive_gain import AdaptiveGainResult, PipelineScore, run_adaptive_gain
from repro.experiments.ablations import (
    BlobHeuristicDetector,
    ContentionResult,
    DbnAblationResult,
    FloorplanSweepResult,
    HysteresisAblationResult,
    ThresholdAblationResult,
    run_contention,
    run_dbn_ablation,
    run_floorplan_sweep,
    run_hysteresis_ablation,
    run_threshold_ablation,
)
from repro.experiments.common import (
    ConditionCorpora,
    build_corpora,
    corpora_and_models,
    detector_with,
    trained_dark_detector,
)
from repro.experiments.dark_accuracy import (
    PAPER_DARK_ACCURACY,
    DarkAccuracyResult,
    run_dark_accuracy,
)
from repro.experiments.figures import (
    DarkSamplesResult,
    FpsResult,
    PipelineTimingResult,
    PrControllerTraceResult,
    SystemTopologyResult,
    TrainingFlowResult,
    run_fig2_pipeline,
    run_fig4_pipeline,
    run_fig5_samples,
    run_fig6_system,
    run_fig7_pr_controller,
    run_fps,
    run_pedestrian_pipeline,
    run_training_flow,
)
from repro.experiments.reconfig import (
    PAPER_RECONFIG_MS,
    PAPER_SPEEDUP_OVER_PCAP,
    PAPER_THROUGHPUT_MB_S,
    LatencyResult,
    ThroughputResult,
    run_latency,
    run_throughput,
)
from repro.experiments.table1 import PAPER_TABLE1, Table1Result, run_table1
from repro.experiments.tracking_ext import TrackingExtensionResult, run_tracking_extension
from repro.experiments.table2 import PAPER_TABLE2, Table2Result, run_table2
from repro.experiments.tables import format_table, pct

__all__ = [
    "AdaptiveGainResult",
    "BlobHeuristicDetector",
    "ConditionCorpora",
    "ContentionResult",
    "DarkAccuracyResult",
    "DarkSamplesResult",
    "DbnAblationResult",
    "FloorplanSweepResult",
    "FpsResult",
    "HysteresisAblationResult",
    "LatencyResult",
    "PAPER_DARK_ACCURACY",
    "PAPER_RECONFIG_MS",
    "PAPER_SPEEDUP_OVER_PCAP",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_THROUGHPUT_MB_S",
    "PipelineTimingResult",
    "PrControllerTraceResult",
    "SystemTopologyResult",
    "Table1Result",
    "TrackingExtensionResult",
    "Table2Result",
    "ThresholdAblationResult",
    "ThroughputResult",
    "TrainingFlowResult",
    "build_corpora",
    "corpora_and_models",
    "detector_with",
    "format_table",
    "PipelineScore",
    "pct",
    "run_adaptive_gain",
    "run_contention",
    "run_dark_accuracy",
    "run_dbn_ablation",
    "run_fig2_pipeline",
    "run_fig4_pipeline",
    "run_fig5_samples",
    "run_fig6_system",
    "run_fig7_pr_controller",
    "run_floorplan_sweep",
    "run_fps",
    "run_hysteresis_ablation",
    "run_latency",
    "run_pedestrian_pipeline",
    "run_table1",
    "run_table2",
    "run_threshold_ablation",
    "run_throughput",
    "run_tracking_extension",
    "run_training_flow",
    "trained_dark_detector",
]
