"""Experiment T2 — paper Table II: resource utilization.

Builds the three designs from the block-level resource model, floor-plans
the reconfigurable partition over both vehicle configurations, and renders
the five-row table (available / static / RP / day-dusk / dark / total).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.designs import dark_design, day_dusk_design, static_design
from repro.hw.floorplan import Partition, plan_vehicle_partition
from repro.hw.resources import Device, ResourceVector, ZYNQ_7Z100
from repro.experiments.tables import format_table

# The paper's Table II (percent of available), for comparison in reports.
PAPER_TABLE2 = {
    "static": {"LUT": 0.21, "FF": 0.10, "BRAM": 0.12, "DSP48": 0.01},
    "reconfigurable-partition": {"LUT": 0.45, "FF": 0.45, "BRAM": 0.40, "DSP48": 0.40},
    "day-dusk": {"LUT": 0.19, "FF": 0.09, "BRAM": 0.11, "DSP48": 0.01},
    "dark": {"LUT": 0.40, "FF": 0.23, "BRAM": 0.19, "DSP48": 0.29},
    "total": {"LUT": 0.66, "FF": 0.55, "BRAM": 0.52, "DSP48": 0.41},
}

RESOURCE_CLASSES = ("LUT", "FF", "BRAM", "DSP48")


@dataclass
class Table2Result:
    """Measured Table II with the underlying design reports."""

    device: Device
    static: ResourceVector
    day_dusk: ResourceVector
    dark: ResourceVector
    partition: Partition

    @property
    def total(self) -> ResourceVector:
        """Static + the whole RP capacity (the paper's summation rule)."""
        return self.static + self.partition.capacity

    def utilization_rows(self) -> dict[str, dict[str, float]]:
        u = self.device.utilization
        return {
            "static": u(self.static),
            "reconfigurable-partition": u(self.partition.capacity),
            "day-dusk": u(self.day_dusk),
            "dark": u(self.dark),
            "total": u(self.total),
        }

    def render(self) -> str:
        avail = self.device.available
        rows: list[list[object]] = [
            ["Available Resources", avail.lut, avail.ff, avail.bram, avail.dsp],
        ]
        labels = {
            "static": "Static Design",
            "reconfigurable-partition": "Reconfigurable Partition",
            "day-dusk": "Day and Dusk Design",
            "dark": "Dark Design",
            "total": "Total Usage",
        }
        measured = self.utilization_rows()
        for key, label in labels.items():
            row: list[object] = [label]
            for cls in RESOURCE_CLASSES:
                ours = measured[key][cls]
                paper = PAPER_TABLE2[key][cls]
                row.append(f"{100 * ours:.0f}% ({100 * paper:.0f}%)")
            rows.append(row)
        return format_table(
            ["", "LUT", "FF", "BRAM", "DSP48"],
            rows,
            title=f"Table II on {self.device.name} — measured (paper)",
        )

    def shape_checks(self) -> dict[str, bool]:
        measured = self.utilization_rows()
        dark_u = measured["dark"]
        dd_u = measured["day-dusk"]
        return {
            # "the dark configuration consumes more resources"
            "dark_is_largest_configuration": all(
                dark_u[c] >= dd_u[c] for c in RESOURCE_CLASSES
            ),
            "both_configs_fit_partition": self.partition.fits(self.day_dusk)
            and self.partition.fits(self.dark),
            "total_fits_device": self.total.fits_in(self.device.available),
            # within 5 points of every paper cell
            "matches_paper_within_5pts": all(
                abs(measured[row][c] - PAPER_TABLE2[row][c]) <= 0.05
                for row in measured
                for c in RESOURCE_CLASSES
            ),
        }


def run_table2(device: Device = ZYNQ_7Z100) -> Table2Result:
    """Reproduce Table II from the block-level resource model."""
    static = static_design().total
    day_dusk = day_dusk_design().total
    dark = dark_design().total
    partition = plan_vehicle_partition([day_dusk, dark], device=device)
    return Table2Result(
        device=device,
        static=static,
        day_dusk=day_dusk,
        dark=dark,
        partition=partition,
    )
