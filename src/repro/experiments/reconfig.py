"""Experiments RT + RL — reconfiguration throughput and latency.

RT (Section IV-A): drive an 8 MB partial bitstream through each of the four
configuration paths in the SoC simulator and report measured MB/s against
the published numbers (PCAP 145, AXI HWICAP 19, ZyCAP 382, ours 390;
theoretical ceiling 400).

RL (Section IV-B): run a drive with dusk<->dark transitions and count
vehicle frames dropped per reconfiguration (paper: 20 ms = one frame at
50 fps) and pedestrian drops (paper: zero — "the pedestrian detection
module continues its work").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive.sensor import LuxTrace, urban_evening_trace
from repro.core.system import AdaptiveDetectionSystem, DriveReport, SystemConfig
from repro.experiments.tables import format_table
from repro.telemetry.session import Telemetry
from repro.zynq.pr import (
    ALL_CONTROLLERS,
    THEORETICAL_MAX_MB_S,
    BasePrController,
    ReconfigReport,
)
from repro.zynq.soc import ZynqSoC

# Published throughputs (MB/s) from Section IV-A and refs [1], [19].
PAPER_THROUGHPUT_MB_S = {
    "pcap": 145.0,
    "hwicap": 19.0,
    "zycap": 382.0,
    "paper-pr": 390.0,
}
PAPER_RECONFIG_MS = 20.0
PAPER_SPEEDUP_OVER_PCAP = 2.6


@dataclass
class ThroughputResult:
    """Measured throughput per controller."""

    reports: dict[str, ReconfigReport]

    def throughput(self, controller: str) -> float:
        return self.reports[controller].throughput_mb_s

    def render(self) -> str:
        rows = []
        for name, report in self.reports.items():
            rows.append(
                [
                    name,
                    f"{report.throughput_mb_s:.1f}",
                    f"{PAPER_THROUGHPUT_MB_S[name]:.1f}",
                    f"{report.duration_s * 1e3:.2f}",
                ]
            )
        rows.append(["(theoretical max)", f"{THEORETICAL_MAX_MB_S:.1f}", "400.0", "-"])
        return format_table(
            ["controller", "MB/s (measured)", "MB/s (paper)", "ms for 8 MB"],
            rows,
            title="Reconfiguration throughput (Section IV-A)",
        )

    def shape_checks(self) -> dict[str, bool]:
        t = self.throughput
        return {
            "ranking_ours>zycap>pcap>hwicap": t("paper-pr") > t("zycap") > t("pcap") > t("hwicap"),
            "ours_at_least_2.6x_pcap": t("paper-pr") / t("pcap") >= PAPER_SPEEDUP_OVER_PCAP,
            "all_below_theoretical_max": all(
                r.throughput_mb_s <= THEORETICAL_MAX_MB_S + 1e-6 for r in self.reports.values()
            ),
            "each_within_5pct_of_paper": all(
                abs(r.throughput_mb_s - PAPER_THROUGHPUT_MB_S[n]) / PAPER_THROUGHPUT_MB_S[n] < 0.05
                for n, r in self.reports.items()
            ),
        }


def run_throughput(telemetry: Telemetry | None = None) -> ThroughputResult:
    """RT: one 8 MB reconfiguration through each controller.

    With a recording ``telemetry`` session the measured rates also land in
    the ``pr_throughput_mbs{controller=...}`` gauges (one series per
    controller), so the Section IV-A ranking can be re-derived from an
    exported dump alone.
    """
    reports: dict[str, ReconfigReport] = {}
    for cls in ALL_CONTROLLERS:
        soc = ZynqSoC(controller_cls=cls, telemetry=telemetry)
        report = soc.reconfigure_vehicle("dark")
        soc.sim.run()
        reports[cls.name] = report
    return ThroughputResult(reports=reports)


@dataclass
class LatencyResult:
    """RL: drive-level reconfiguration cost."""

    drive: DriveReport

    def render(self) -> str:
        s = self.drive.summary()
        lines = [
            "Reconfiguration latency during a drive (Section IV-B)",
            f"  frames: {s['frames']}, reconfigurations: {s['reconfigurations']}",
            f"  vehicle frames dropped: {s['vehicle_dropped']} "
            f"({s['drops_per_reconfiguration']:.2f} per reconfiguration; paper: ~1)",
            f"  pedestrian frames dropped: {s['pedestrian_dropped']} (paper: 0)",
            f"  reconfiguration times: {['%.1f ms' % m for m in s['reconfig_ms']]} (paper: ~20 ms)",
        ]
        return "\n".join(lines)

    def shape_checks(self) -> dict[str, bool]:
        s = self.drive.summary()
        return {
            "about_one_frame_per_reconfig": 0 < s["drops_per_reconfiguration"] <= 2.0,
            "pedestrian_uninterrupted": s["pedestrian_dropped"] == 0,
            "reconfig_time_about_20ms": all(18.0 <= m <= 23.0 for m in s["reconfig_ms"]),
            "at_least_one_reconfiguration": s["reconfigurations"] >= 1,
        }


def run_latency(
    trace: LuxTrace | None = None,
    duration_s: float = 120.0,
    controller_cls: type[BasePrController] | None = None,
    telemetry: Telemetry | None = None,
) -> LatencyResult:
    """RL: an urban-evening drive with dusk<->dark transitions.

    With a recording ``telemetry`` session the Section IV-B numbers are
    also exported as metrics: ``reconfig_ms`` (the ~20 ms histogram),
    ``reconfigurations_total``, and ``drops_per_reconfiguration``.
    """
    config = SystemConfig() if controller_cls is None else SystemConfig(controller_cls=controller_cls)
    system = AdaptiveDetectionSystem(config, telemetry=telemetry)
    drive = system.run_drive(trace or urban_evening_trace(duration_s=duration_s))
    return LatencyResult(drive=drive)
