"""Experiments F1-F7 + FPS — the paper's figures.

Figures 1-4, 6 and 7 are architecture/flow diagrams; their "reproduction"
is executable: each runner drives the corresponding implementation and
reports the quantities the figure implies (training flow products, pipeline
stage timing, detection samples, SoC data movement, PR controller event
trace).  FPS reproduces the headline 50 fps / 125 MHz claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.lighting import LightingCondition
from repro.datasets.synthetic import make_iroads_like
from repro.experiments.common import check_scale, corpora_and_models, trained_dark_detector
from repro.experiments.tables import format_table, pct
from repro.hw.designs import dark_pipeline, day_dusk_pipeline, pedestrian_pipeline
from repro.hw.timing import PAPER_CLOCK_HZ
from repro.imaging.draw import ascii_render_with_boxes
from repro.imaging.color import luminance
from repro.pipelines.base import Detection
from repro.pipelines.dark import DarkStageTrace
from repro.zynq.pr import PaperPrController
from repro.zynq.soc import ZynqSoC

PAPER_FPS = 50.0


# --- Fig. 1: training flow ---------------------------------------------------


@dataclass
class TrainingFlowResult:
    """Products of the Fig. 1 flow: three models and their divergence."""

    model_meta: dict[str, dict]
    divergences: dict[str, float]

    def render(self) -> str:
        rows = [
            [name, meta["n_train"], meta["epochs"], meta["n_support"]]
            for name, meta in self.model_meta.items()
        ]
        table = format_table(
            ["model", "train samples", "solver epochs", "support vectors"],
            rows,
            title="Fig. 1 training flow (HOG -> LibLINEAR-style SVM)",
        )
        div = ", ".join(f"{k}: {v:.2f}" for k, v in self.divergences.items())
        return table + f"\nmodel divergence (0=same direction, 1=opposite): {div}"

    def shape_checks(self) -> dict[str, bool]:
        # "the trained model in these three cases look very different" —
        # strongest across conditions (day vs dusk); the combined model
        # shares training data with each, so its divergence is smaller but
        # still well away from colinear.
        return {
            "models_look_very_different": self.divergences["day-vs-dusk"] > 0.25
            and min(self.divergences.values()) > 0.08
        }


def run_training_flow(scale: float = 0.25, seed: int = 0) -> TrainingFlowResult:
    check_scale(scale)
    _, models = corpora_and_models(scale=scale, seed=seed)
    divergences = {
        "day-vs-dusk": models["day"].model_divergence(models["dusk"]),
        "day-vs-combined": models["day"].model_divergence(models["combined"]),
        "dusk-vs-combined": models["dusk"].model_divergence(models["combined"]),
    }
    return TrainingFlowResult(
        model_meta={name: model.meta for name, model in models.items()},
        divergences=divergences,
    )


# --- Fig. 2 / Fig. 4: pipeline timing ----------------------------------------


@dataclass
class PipelineTimingResult:
    """Stage-level timing of one hardware pipeline at 125 MHz."""

    report: dict

    def render(self) -> str:
        rows = [
            [s["name"], s["ii"], f"{s['cycles_per_frame']:.0f}", s["latency"]]
            for s in self.report["stages"]
        ]
        table = format_table(
            ["stage", "II", "cycles/frame", "fill latency"],
            rows,
            title=(
                f"{self.report['name']} pipeline @ {self.report['clock_mhz']:.0f} MHz: "
                f"{self.report['fps']:.1f} fps, bottleneck={self.report['bottleneck']}"
            ),
        )
        return table

    def shape_checks(self) -> dict[str, bool]:
        return {
            "achieves_50fps": self.report["fps"] >= PAPER_FPS,
            "frame_latency_below_budget": self.report["frame_latency_ms"] <= 1e3 / PAPER_FPS * 2,
        }


def run_fig2_pipeline() -> PipelineTimingResult:
    """Fig. 2: the day/dusk HOG+SVM pipeline timing."""
    return PipelineTimingResult(report=day_dusk_pipeline().report())


def run_fig4_pipeline() -> PipelineTimingResult:
    """Fig. 4: the dark pipeline timing."""
    return PipelineTimingResult(report=dark_pipeline().report())


def run_pedestrian_pipeline() -> PipelineTimingResult:
    """Static-partition pedestrian pipeline timing."""
    return PipelineTimingResult(report=pedestrian_pipeline().report())


# --- Fig. 5: sample dark detections -------------------------------------------


@dataclass
class DarkSamplesResult:
    """Rendered dark frames with the pipeline's detections."""

    renders: list[str]
    n_frames: int
    n_detections: int
    n_with_truth: int
    n_detected_with_truth: int

    def render(self) -> str:
        header = (
            f"Fig. 5 samples: {self.n_detections} detections over {self.n_frames} "
            f"dark frames ({self.n_detected_with_truth}/{self.n_with_truth} vehicle frames hit)"
        )
        return header + "\n\n" + "\n\n".join(self.renders)

    def shape_checks(self) -> dict[str, bool]:
        return {
            "detects_in_most_vehicle_frames": self.n_with_truth == 0
            or self.n_detected_with_truth >= 0.7 * self.n_with_truth
        }


def run_fig5_samples(n_frames: int = 4, seed: int = 3, ascii_width: int = 72) -> DarkSamplesResult:
    detector = trained_dark_detector()
    dataset = make_iroads_like(n_frames=n_frames, seed=seed)
    renders: list[str] = []
    n_detections = 0
    n_with_truth = 0
    n_hit = 0
    for frame in dataset.frames:
        detections: list[Detection] = detector.detect(frame.rgb)
        n_detections += len(detections)
        if frame.vehicles:
            n_with_truth += 1
            if detections:
                n_hit += 1
        renders.append(
            ascii_render_with_boxes(
                luminance(frame.rgb), [d.rect for d in detections], width=ascii_width
            )
        )
    return DarkSamplesResult(
        renders=renders,
        n_frames=len(dataset.frames),
        n_detections=n_detections,
        n_with_truth=n_with_truth,
        n_detected_with_truth=n_hit,
    )


# --- Fig. 6: system data movement ----------------------------------------------


@dataclass
class SystemTopologyResult:
    """Data-movement audit of the Fig. 6 SoC over a burst of frames."""

    stats: dict
    hp_bytes: dict[str, int]

    def render(self) -> str:
        lines = [
            "Fig. 6 system: frame streaming audit",
            f"  pedestrian frames processed: {self.stats['pedestrian']['processed']}",
            f"  vehicle frames processed: {self.stats['vehicle']['processed']}",
            f"  interrupts: {self.stats['interrupts']}",
            f"  HP port bytes: {self.hp_bytes}",
        ]
        return "\n".join(lines)

    def shape_checks(self) -> dict[str, bool]:
        irq = self.stats["interrupts"]
        return {
            "every_dma_interrupted_per_frame": len({v for k, v in irq.items() if "dma" in k}) == 1,
            "frames_flow_through_hp_ports": all(v > 0 for v in self.hp_bytes.values()),
        }


def run_fig6_system(n_frames: int = 10) -> SystemTopologyResult:
    soc = ZynqSoC()
    frame_period = 1.0 / PAPER_FPS

    for i in range(n_frames):
        soc.sim.schedule(i * frame_period, lambda: (soc.submit_frame("pedestrian"), soc.submit_frame("vehicle")))
    soc.sim.run()
    return SystemTopologyResult(
        stats=soc.stats(),
        hp_bytes={
            "hp0": soc.hp0.bytes_moved,
            "hp1": soc.hp1.bytes_moved,
            "hp2": soc.hp2.bytes_moved,
        },
    )


# --- Fig. 7: PR controller event walk -------------------------------------------


@dataclass
class PrControllerTraceResult:
    """Timestamped event trace of one paper-PR reconfiguration."""

    events: list[str]
    throughput_mb_s: float
    duration_ms: float

    def render(self) -> str:
        header = (
            f"Fig. 7 PR controller: PL DDR -> AXI DMA -> ICAP manager -> ICAPE2: "
            f"{self.throughput_mb_s:.0f} MB/s, {self.duration_ms:.1f} ms"
        )
        return header + "\n" + "\n".join(self.events)

    def shape_checks(self) -> dict[str, bool]:
        return {
            "hits_390_mb_s": abs(self.throughput_mb_s - 390.0) < 10.0,
            "interrupt_signals_completion": any("reconfig_done" in e for e in self.events),
        }


def run_fig7_pr_controller() -> PrControllerTraceResult:
    soc = ZynqSoC(controller_cls=PaperPrController)
    report = soc.reconfigure_vehicle("dark")
    soc.sim.run()
    events = [
        f"  t={r.time * 1e3:8.3f} ms  [{r.source}] {r.message}" for r in soc.trace.records
    ]
    irq = soc.interrupts.count(soc.pr.irq_line)
    events.append(f"  t={soc.sim.now * 1e3:8.3f} ms  [ps] {soc.pr.irq_line} interrupts delivered: {irq}")
    return PrControllerTraceResult(
        events=events,
        throughput_mb_s=report.throughput_mb_s,
        duration_ms=report.duration_s * 1e3,
    )


# --- FPS: the headline real-time claim -------------------------------------------


@dataclass
class FpsResult:
    """Frame-rate audit across all three pipelines and the system drive."""

    pipeline_fps: dict[str, float]
    system_vehicle_fps: float
    system_pedestrian_fps: float

    def render(self) -> str:
        rows = [[k, f"{v:.1f}"] for k, v in self.pipeline_fps.items()]
        rows.append(["system (vehicle, incl. PR drops)", f"{self.system_vehicle_fps:.1f}"])
        rows.append(["system (pedestrian)", f"{self.system_pedestrian_fps:.1f}"])
        return format_table(
            ["path", "fps"], rows, title=f"Real-time rate at 125 MHz (paper: {PAPER_FPS:.0f} fps HDTV)"
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            "all_pipelines_at_least_50fps": all(v >= PAPER_FPS for v in self.pipeline_fps.values()),
            "system_sustains_about_50fps": self.system_vehicle_fps >= PAPER_FPS * 0.98
            and self.system_pedestrian_fps >= PAPER_FPS * 0.999,
        }


def run_fps(drive_duration_s: float = 60.0) -> FpsResult:
    from repro.adaptive.sensor import urban_evening_trace
    from repro.core.system import AdaptiveDetectionSystem

    pipelines = {
        "day-dusk pipeline": day_dusk_pipeline().fps,
        "dark pipeline": dark_pipeline().fps,
        "pedestrian pipeline": pedestrian_pipeline().fps,
    }
    system = AdaptiveDetectionSystem()
    drive = system.run_drive(urban_evening_trace(duration_s=drive_duration_s))
    n = drive.n_frames
    veh_fps = PAPER_FPS * (n - drive.vehicle_dropped) / n
    ped_fps = PAPER_FPS * (n - drive.pedestrian_dropped) / n
    return FpsResult(
        pipeline_fps=pipelines,
        system_vehicle_fps=veh_fps,
        system_pedestrian_fps=ped_fps,
    )
