"""Ablation studies for the design choices DESIGN.md calls out.

* chroma+luma vs luma-only thresholding in the dark pipeline;
* the DBN taillight stage vs a plain blob-size heuristic;
* hysteresis controller vs naive thresholding (reconfiguration storms);
* reconfigurable-partition slack sweep;
* HP-port contention: ZyCAP-style reconfiguration vs the paper controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.adaptive.controller import ControllerConfig, LightingController, NaiveController
from repro.adaptive.sensor import LightSensor, flicker_trace
from repro.datasets.synthetic import make_iroads_like
from repro.errors import ResourceError
from repro.experiments.common import trained_dark_detector
from repro.experiments.tables import format_table, pct
from repro.hw.designs import dark_design, day_dusk_design
from repro.hw.floorplan import plan_vehicle_partition
from repro.hw.resources import ZYNQ_7Z100
from repro.imaging.components import find_blobs
from repro.imaging.geometry import Rect
from repro.pipelines.base import Detection
from repro.pipelines.dark import DarkConfig, DarkVehicleDetector
from repro.pipelines.evaluation import FrameEvaluation, evaluate_frames
from repro.pipelines.taillight import (
    CLASS_RADIUS_PX,
    TaillightCandidate,
    vehicle_box_from_pair,
)
from repro.zynq.pr import PaperPrController, ZycapController
from repro.zynq.soc import FRAME_BYTES, ZynqSoC


# --- Threshold ablation -----------------------------------------------------


@dataclass
class ThresholdAblationResult:
    with_chroma: FrameEvaluation
    luma_only: FrameEvaluation

    def render(self) -> str:
        rows = [
            ["chroma+luma (paper)", pct(self.with_chroma.frame_accuracy), pct(self.with_chroma.object_recall), self.with_chroma.spurious],
            ["luma only", pct(self.luma_only.frame_accuracy), pct(self.luma_only.object_recall), self.luma_only.spurious],
        ]
        return format_table(
            ["threshold", "frame accuracy", "object recall", "spurious"],
            rows,
            title="Ablation: chroma+luma vs luma-only thresholding (dark pipeline)",
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            # The chroma mask exists to reject non-red light sources.
            "chroma_reduces_spurious": self.with_chroma.spurious <= self.luma_only.spurious,
            "chroma_at_least_as_accurate": self.with_chroma.frame_accuracy
            >= self.luma_only.frame_accuracy - 1e-9,
        }


def run_threshold_ablation(n_frames: int = 30, seed: int = 17) -> ThresholdAblationResult:
    frames = make_iroads_like(n_frames=n_frames, seed=seed).frames
    base = trained_dark_detector()
    with_chroma = evaluate_frames(base, frames, iou_threshold=0.25)
    luma_detector = DarkVehicleDetector(
        config=DarkConfig(use_chroma=False), dbn=base.dbn, matcher=base.matcher
    )
    luma_only = evaluate_frames(luma_detector, frames, iou_threshold=0.25)
    return ThresholdAblationResult(with_chroma=with_chroma, luma_only=luma_only)


# --- DBN vs blob heuristic -----------------------------------------------------


class BlobHeuristicDetector:
    """Baseline: replace the sliding DBN with plain blob statistics.

    Candidates are connected components of the processed mask filtered by
    area only; pairing reuses the same trained matcher.  This isolates what
    the DBN's shape/size classification buys.
    """

    def __init__(self, base: DarkVehicleDetector) -> None:
        self.base = base
        self.name = "vehicle-dark-blob-baseline"

    def detect(self, frame: np.ndarray) -> list[Detection]:
        rgb = np.asarray(frame)
        factor = self.base._effective_factor(rgb.shape[0], rgb.shape[1])
        mask = self.base.preprocess(rgb)
        candidates = []
        for blob in find_blobs(mask, min_area=2):
            # Size class from blob area alone (no shape discrimination).
            radius = math.sqrt(blob.area / math.pi)
            if radius <= 1.6:
                size_class = 1
            elif radius <= 2.8:
                size_class = 2
            else:
                size_class = 3
            candidates.append(
                TaillightCandidate(
                    center=blob.centroid,
                    size_class=size_class,
                    area=float(blob.area) / 4.0,
                    bbox=blob.bbox,
                )
            )
        candidates.sort(key=lambda c: c.area, reverse=True)
        candidates = candidates[: self.base.config.max_candidates]
        pairs = self.base.matcher.match_pairs(candidates)
        detections = []
        for i, j, score in pairs:
            box = vehicle_box_from_pair(candidates[i], candidates[j]).scaled(float(factor))
            clipped = box.clipped(rgb.shape[1], rgb.shape[0])
            if clipped is not None:
                detections.append(Detection(rect=clipped, score=score, kind="vehicle"))
        return detections

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        detections = self.detect(crop)
        if not detections:
            return False, 0.0
        return True, max(d.score for d in detections)


@dataclass
class DbnAblationResult:
    dbn: FrameEvaluation
    blob_heuristic: FrameEvaluation

    def render(self) -> str:
        rows = [
            ["sliding DBN (paper)", pct(self.dbn.frame_accuracy), pct(self.dbn.object_recall), self.dbn.spurious],
            ["blob-size heuristic", pct(self.blob_heuristic.frame_accuracy), pct(self.blob_heuristic.object_recall), self.blob_heuristic.spurious],
        ]
        return format_table(
            ["taillight stage", "frame accuracy", "object recall", "spurious"],
            rows,
            title="Ablation: DBN taillight classification vs blob-size heuristic",
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            "dbn_at_least_as_accurate": self.dbn.frame_accuracy
            >= self.blob_heuristic.frame_accuracy - 1e-9,
            "dbn_not_more_spurious": self.dbn.spurious <= self.blob_heuristic.spurious,
        }


def run_dbn_ablation(n_frames: int = 30, seed: int = 19) -> DbnAblationResult:
    frames = make_iroads_like(n_frames=n_frames, seed=seed).frames
    base = trained_dark_detector()
    dbn_eval = evaluate_frames(base, frames, iou_threshold=0.25)
    blob_eval = evaluate_frames(BlobHeuristicDetector(base), frames, iou_threshold=0.25)
    return DbnAblationResult(dbn=dbn_eval, blob_heuristic=blob_eval)


# --- Hysteresis ablation ----------------------------------------------------------


@dataclass
class HysteresisAblationResult:
    hysteretic_switches: int
    naive_switches: int
    duration_s: float

    def render(self) -> str:
        return "\n".join(
            [
                "Ablation: hysteresis + dwell vs naive thresholding",
                f"  boundary-hugging illuminance for {self.duration_s:.0f} s:",
                f"  naive controller switches:      {self.naive_switches}"
                f"  (each dusk<->dark switch costs a 20 ms PR + 1 frame)",
                f"  hysteretic controller switches: {self.hysteretic_switches}",
            ]
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            "naive_controller_storms": self.naive_switches >= 6,
            "hysteresis_suppresses_storm": self.hysteretic_switches <= max(2, self.naive_switches // 3),
        }


def run_hysteresis_ablation(duration_s: float = 120.0, seed: int = 23) -> HysteresisAblationResult:
    from repro.datasets.lighting import LightingCondition

    trace = flicker_trace(base_lux=6.2, dip_lux=4.2, period_s=4.0, duration_s=duration_s)
    hysteretic = LightingController(ControllerConfig(), initial=LightingCondition.DUSK)
    naive = NaiveController(initial=LightingCondition.DUSK)
    changes_h = hysteretic.run_trace(LightSensor(trace, noise_rel=0.05, seed=seed), 0.1, duration_s)
    changes_n = naive.run_trace(LightSensor(trace, noise_rel=0.05, seed=seed), 0.1, duration_s)
    return HysteresisAblationResult(
        hysteretic_switches=len(changes_h),
        naive_switches=len(changes_n),
        duration_s=duration_s,
    )


# --- Floorplan slack sweep -----------------------------------------------------------


@dataclass
class FloorplanSweepResult:
    rows: list[tuple[float, float, bool]]  # (slack, area fraction, total fits)

    def render(self) -> str:
        table_rows = [
            [f"{slack:.2f}", f"{area:.2f}", "yes" if fits else "NO"]
            for slack, area, fits in self.rows
        ]
        return format_table(
            ["slack", "RP area fraction", "static+RP fits device"],
            table_rows,
            title="Ablation: reconfigurable-partition slack sweep",
        )

    def shape_checks(self) -> dict[str, bool]:
        areas = [area for _, area, _ in self.rows]
        return {
            "area_monotone_in_slack": all(a <= b + 1e-9 for a, b in zip(areas, areas[1:])),
            "paper_slack_fits": any(abs(s - 1.125) < 1e-9 and fits for s, _, fits in self.rows),
        }


def run_floorplan_sweep(slacks: tuple[float, ...] = (1.0, 1.125, 1.2, 1.4, 1.7, 2.0)) -> FloorplanSweepResult:
    from repro.hw.designs import static_design

    configs = [day_dusk_design().total, dark_design().total]
    static = static_design().total
    rows = []
    for slack in slacks:
        try:
            partition = plan_vehicle_partition(configs, slack=slack)
        except ResourceError:
            rows.append((slack, float("nan"), False))
            continue
        total = static + partition.capacity
        rows.append((slack, partition.area_fraction, total.fits_in(ZYNQ_7Z100.available)))
    return FloorplanSweepResult(rows=rows)


# --- HP-port contention ----------------------------------------------------------------


@dataclass
class ContentionResult:
    """Pedestrian frame latency during reconfiguration, per controller."""

    paper_delay_ms: float
    zycap_delay_ms: float

    def render(self) -> str:
        return "\n".join(
            [
                "Ablation: HP-port contention during reconfiguration",
                "  extra delay of a pedestrian frame issued mid-reconfiguration:",
                f"  paper PR controller (PL DDR path): {self.paper_delay_ms:.2f} ms",
                f"  ZyCAP-style (HP port path):        {self.zycap_delay_ms:.2f} ms",
            ]
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            "paper_controller_keeps_hp_free": self.paper_delay_ms < 0.5,
            "zycap_delays_video_traffic": self.zycap_delay_ms > self.paper_delay_ms + 1.0,
        }


def _pedestrian_frame_delay(controller_cls: type) -> float:
    """Latency of a pedestrian frame input DMA issued during a PR."""
    soc = ZynqSoC(controller_cls=controller_cls)
    done_at: list[float] = []
    start_at: list[float] = []

    def issue() -> None:
        start_at.append(soc.sim.now)
        soc.submit_frame("pedestrian", on_result=lambda: done_at.append(soc.sim.now))

    soc.reconfigure_vehicle("dark")
    soc.sim.schedule(0.001, issue)  # 1 ms into the ~20 ms reconfiguration
    soc.sim.run()
    if not done_at:
        raise ResourceError("pedestrian frame never completed")
    return done_at[0] - start_at[0]


def run_contention() -> ContentionResult:
    baseline = _pedestrian_frame_delay(PaperPrController)
    zycap = _pedestrian_frame_delay(ZycapController)
    return ContentionResult(
        paper_delay_ms=(baseline - _ideal_frame_time()) * 1e3,
        zycap_delay_ms=(zycap - _ideal_frame_time()) * 1e3,
    )


def _ideal_frame_time() -> float:
    """Uncontended pedestrian frame turnaround (input + process + result)."""
    soc = ZynqSoC()
    done: list[float] = []
    soc.submit_frame("pedestrian", on_result=lambda: done.append(soc.sim.now))
    soc.sim.run()
    return done[0]
