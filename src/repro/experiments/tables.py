"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(x: float) -> str:
    """Format a fraction as a percentage with two decimals (paper style)."""
    return f"{100.0 * x:.2f}%"
