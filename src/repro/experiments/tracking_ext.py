"""Extension experiment — temporal tracking over dark drive sequences.

Not a paper artefact: the paper's related work ([3]-[5]) consistently pairs
nighttime lamp detection with tracking, and the paper lists richer ADS
features as the motivation for freeing resources.  This experiment measures
what the tracking extension buys on temporally-coherent dark sequences:
recall recovered by coasting through detector dropouts, and identity
stability (ID switches / MOTA).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.lighting import DARK_LIGHTING
from repro.datasets.scene import SceneConfig
from repro.datasets.sequences import SequenceConfig, render_sequence
from repro.experiments.common import trained_dark_detector
from repro.experiments.tables import format_table, pct
from repro.pipelines.tracking import TrackingEvaluation, TrackingPipeline, evaluate_tracking


@dataclass
class TrackingExtensionResult:
    plain: TrackingEvaluation
    tracked: TrackingEvaluation

    def render(self) -> str:
        rows = [
            [
                "detector only",
                pct(self.plain.recall),
                self.plain.missed,
                self.plain.spurious,
                "-",
                f"{self.plain.mota:.2f}",
            ],
            [
                "detector + tracker",
                pct(self.tracked.recall),
                self.tracked.missed,
                self.tracked.spurious,
                self.tracked.id_switches,
                f"{self.tracked.mota:.2f}",
            ],
        ]
        return format_table(
            ["pipeline", "recall", "missed", "spurious", "ID switches", "MOTA"],
            rows,
            title="Extension: temporal tracking on dark drive sequences",
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            "tracking_recovers_dropouts": self.tracked.recall >= self.plain.recall,
            "identities_stable": self.tracked.id_switches <= max(2, self.tracked.frames // 10),
            "tracking_does_not_hallucinate": self.tracked.spurious
            <= self.plain.spurious + self.tracked.frames // 10,
        }


def run_tracking_extension(
    n_frames: int = 40,
    n_vehicles: int = 2,
    seed: int = 3,
) -> TrackingExtensionResult:
    """Compare the dark detector with and without the tracking layer."""
    config = SequenceConfig(
        scene=SceneConfig(
            height=360,
            width=640,
            n_vehicles=n_vehicles,
            vehicle_fill=(0.08, 0.16),
            wet_road_probability=0.6,
            seed=seed,
        ),
        n_frames=n_frames,
    )
    frames = render_sequence(config, DARK_LIGHTING)
    detector = trained_dark_detector()
    plain = evaluate_tracking(detector, frames)
    tracked = evaluate_tracking(TrackingPipeline(detector), frames)
    return TrackingExtensionResult(plain=plain, tracked=tracked)
