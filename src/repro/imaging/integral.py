"""Integral images (summed-area tables) and box sums.

Used by the dataset renderer's shading and by fast blob/occupancy queries in
the taillight pairing stage; also the canonical building block behind
Haar-style features the related work (VeDANt [11]) uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.geometry import Rect
from repro.imaging.image import ensure_gray


def integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top row / left column.

    ``ii[y, x]`` is the sum of all pixels strictly above and left of (y, x),
    so a box sum needs no boundary special cases.
    """
    arr = ensure_gray(image)
    ii = np.zeros((arr.shape[0] + 1, arr.shape[1] + 1), dtype=np.float64)
    np.cumsum(np.cumsum(arr, axis=0), axis=1, out=ii[1:, 1:])
    return ii


def box_sum(ii: np.ndarray, rect: Rect) -> float:
    """Sum of pixels inside ``rect`` using an integral image from
    :func:`integral_image`.  The rect must lie inside the source image."""
    arr = np.asarray(ii)
    if arr.ndim != 2:
        raise ImageError(f"integral image must be 2-D, got shape {arr.shape}")
    x, y, w, h = rect.as_int()
    max_h, max_w = arr.shape[0] - 1, arr.shape[1] - 1
    if x < 0 or y < 0 or x + w > max_w or y + h > max_h:
        raise ImageError(
            f"rect {rect} exceeds integral image extent ({max_h}, {max_w})"
        )
    return float(arr[y + h, x + w] - arr[y, x + w] - arr[y + h, x] + arr[y, x])


def box_mean(ii: np.ndarray, rect: Rect) -> float:
    """Mean of pixels inside ``rect`` via the integral image."""
    x, y, w, h = rect.as_int()
    return box_sum(ii, rect) / float(w * h)


def occupancy(ii: np.ndarray, rect: Rect) -> float:
    """Fraction of set pixels inside ``rect`` of a binary image's integral.

    Identical to :func:`box_mean`, named for readability at call sites that
    query mask coverage.
    """
    return box_mean(ii, rect)
