"""Lightweight drawing helpers for examples and dataset rendering.

These are plain numpy rasterisers: filled rectangles, outlined boxes, disks,
radial light glows, and an ASCII renderer used by the example scripts to show
detections in a terminal without any imaging dependency.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.geometry import Rect


def _clip_span(lo: int, hi: int, limit: int) -> tuple[int, int]:
    return max(lo, 0), min(hi, limit)


def fill_rect(image: np.ndarray, rect: Rect, value) -> None:
    """Fill ``rect`` with ``value`` in place (scalar for gray, 3-seq for RGB)."""
    arr = np.asarray(image)
    x, y, w, h = rect.as_int()
    y1, y2 = _clip_span(y, y + h, arr.shape[0])
    x1, x2 = _clip_span(x, x + w, arr.shape[1])
    if y2 <= y1 or x2 <= x1:
        return
    image[y1:y2, x1:x2] = value


def draw_box(image: np.ndarray, rect: Rect, value, thickness: int = 1) -> None:
    """Draw the outline of ``rect`` in place."""
    if thickness < 1:
        raise ImageError(f"thickness must be >= 1, got {thickness}")
    x, y, w, h = rect.as_int()
    t = thickness
    fill_rect(image, Rect(x, y, w, min(t, h)), value)
    fill_rect(image, Rect(x, y + h - min(t, h), w, min(t, h)), value)
    fill_rect(image, Rect(x, y, min(t, w), h), value)
    fill_rect(image, Rect(x + w - min(t, w), y, min(t, w), h), value)


def fill_disk(image: np.ndarray, cx: float, cy: float, radius: float, value) -> None:
    """Fill a disk of ``radius`` centred at (cx, cy) in place."""
    if radius <= 0:
        raise ImageError(f"radius must be positive, got {radius}")
    arr = np.asarray(image)
    height, width = arr.shape[:2]
    y1, y2 = _clip_span(int(cy - radius), int(cy + radius) + 2, height)
    x1, x2 = _clip_span(int(cx - radius), int(cx + radius) + 2, width)
    if y2 <= y1 or x2 <= x1:
        return
    ys, xs = np.mgrid[y1:y2, x1:x2]
    inside = (ys - cy) ** 2 + (xs - cx) ** 2 <= radius**2
    region = image[y1:y2, x1:x2]
    if arr.ndim == 3:
        region[inside] = value
    else:
        region[inside] = value
    image[y1:y2, x1:x2] = region


def light_glow(height: int, width: int, cx: float, cy: float, radius: float, intensity: float = 1.0) -> np.ndarray:
    """Radial falloff patch modelling the bloom around a light source.

    Returns an (height, width) plane with a Gaussian-ish glow centred at
    (cx, cy); callers tint it per channel and add it onto the scene.
    """
    if radius <= 0:
        raise ImageError(f"radius must be positive, got {radius}")
    ys, xs = np.mgrid[0:height, 0:width]
    dist2 = (ys - cy) ** 2 + (xs - cx) ** 2
    return intensity * np.exp(-dist2 / (2.0 * (radius / 2.0) ** 2))


# ASCII rendering --------------------------------------------------------

_ASCII_RAMP = " .:-=+*#%@"


def ascii_render(gray: np.ndarray, width: int = 72) -> str:
    """Render a gray image as ASCII art (examples / terminal debugging)."""
    from repro.imaging.resize import resize_bilinear

    arr = np.asarray(gray, dtype=np.float64)
    if arr.ndim == 3:
        arr = arr.mean(axis=2)
    in_h, in_w = arr.shape
    out_w = min(width, in_w) if in_w > 0 else width
    # Terminal cells are ~2x taller than wide; halve the row count.
    out_h = max(1, int(round(in_h * out_w / in_w / 2.0)))
    small = resize_bilinear(arr, out_h, out_w)
    lo, hi = small.min(), small.max()
    if hi - lo < 1e-12:
        norm = np.zeros_like(small)
    else:
        norm = (small - lo) / (hi - lo)
    indices = np.minimum((norm * len(_ASCII_RAMP)).astype(int), len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in indices)


def ascii_render_with_boxes(gray: np.ndarray, boxes: list[Rect], width: int = 72) -> str:
    """ASCII render with detection boxes burnt in as bright outlines."""
    arr = np.asarray(gray, dtype=np.float64)
    if arr.ndim == 3:
        arr = arr.mean(axis=2)
    canvas = arr.copy()
    peak = float(canvas.max()) if canvas.size else 1.0
    for box in boxes:
        draw_box(canvas, box, max(1.0, peak), thickness=max(1, int(arr.shape[0] / 60)))
    return ascii_render(canvas, width=width)
