"""Binary morphology: erosion, dilation, opening, closing.

The dark pipeline (paper Fig. 4) follows its threshold stage with a *closing*
(dilate then erode) to remove noise produced by thresholding and to smooth
blob contours by filling small holes.  Structuring elements are binary numpy
masks; rectangular and cross-shaped elements are provided.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_binary


def rect_element(height: int, width: int) -> np.ndarray:
    """Solid rectangular structuring element."""
    if height < 1 or width < 1:
        raise ImageError(f"element sides must be >= 1, got ({height}, {width})")
    return np.ones((height, width), dtype=bool)


def square_element(size: int) -> np.ndarray:
    """Solid square structuring element."""
    return rect_element(size, size)


def cross_element(size: int) -> np.ndarray:
    """Plus-shaped structuring element with odd ``size``."""
    if size < 1 or size % 2 == 0:
        raise ImageError(f"cross size must be odd and >= 1, got {size}")
    element = np.zeros((size, size), dtype=bool)
    mid = size // 2
    element[mid, :] = True
    element[:, mid] = True
    return element


def _validate_element(element: np.ndarray) -> np.ndarray:
    el = np.asarray(element).astype(bool)
    if el.ndim != 2:
        raise ImageError(f"structuring element must be 2-D, got shape {el.shape}")
    if not el.any():
        raise ImageError("structuring element must contain at least one True cell")
    return el


def dilate(mask: np.ndarray, element: np.ndarray) -> np.ndarray:
    """Binary dilation: OR of the mask shifted over the element's support.

    Border handling pads with zeros (background), matching a streaming
    hardware window that reads zero outside the frame.
    """
    src = ensure_binary(mask)
    el = _validate_element(element)
    eh, ew = el.shape
    cy, cx = eh // 2, ew // 2
    padded = np.pad(src, ((cy, eh - 1 - cy), (cx, ew - 1 - cx)), mode="constant")
    height, width = src.shape
    out = np.zeros_like(src)
    for dy in range(eh):
        for dx in range(ew):
            if el[dy, dx]:
                out |= padded[dy : dy + height, dx : dx + width]
    return out


def erode(mask: np.ndarray, element: np.ndarray) -> np.ndarray:
    """Binary erosion: AND of the mask shifted over the element's support."""
    src = ensure_binary(mask)
    el = _validate_element(element)
    eh, ew = el.shape
    cy, cx = eh // 2, ew // 2
    padded = np.pad(src, ((cy, eh - 1 - cy), (cx, ew - 1 - cx)), mode="constant")
    height, width = src.shape
    out = np.ones_like(src)
    for dy in range(eh):
        for dx in range(ew):
            if el[dy, dx]:
                out &= padded[dy : dy + height, dx : dx + width]
    return out


def closing(mask: np.ndarray, element: np.ndarray) -> np.ndarray:
    """Dilate then erode — fills small holes, joins nearby fragments.

    This is the exact "Closing (Dilate & Erode)" block of paper Fig. 4.
    """
    return erode(dilate(mask, element), element)


def opening(mask: np.ndarray, element: np.ndarray) -> np.ndarray:
    """Erode then dilate — removes specks smaller than the element."""
    return dilate(erode(mask, element), element)


def remove_small_regions(mask: np.ndarray, min_area: int) -> np.ndarray:
    """Drop connected regions with fewer than ``min_area`` pixels.

    A cheap denoiser used after thresholding when the closing alone leaves
    isolated hot pixels (sensor noise, distant street lamps).
    """
    from repro.imaging.components import label_components

    if min_area <= 1:
        return ensure_binary(mask).copy()
    labels, count = label_components(mask)
    if count == 0:
        return np.zeros_like(ensure_binary(mask))
    areas = np.bincount(labels.ravel(), minlength=count + 1)
    keep = areas >= min_area
    keep[0] = False
    return keep[labels]
