"""Connected-component labelling and blob statistics.

Taillight candidates in the dark pipeline are blobs of the thresholded,
closed mask.  Labelling is two-pass with union-find over 8-connectivity,
the standard streaming-hardware-friendly formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.geometry import Rect
from repro.imaging.image import ensure_binary


class _UnionFind:
    """Union-find over dense integer labels with path compression."""

    def __init__(self) -> None:
        self._parent: list[int] = [0]

    def make(self) -> int:
        label = len(self._parent)
        self._parent.append(label)
        return label

    def find(self, label: int) -> int:
        root = label
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[label] != root:
            self._parent[label], label = root, self._parent[label]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            if ra > rb:
                ra, rb = rb, ra
            self._parent[rb] = ra


def label_components(mask: np.ndarray, connectivity: int = 8) -> tuple[np.ndarray, int]:
    """Label connected regions of a binary mask.

    Args:
        mask: 2-D binary image.
        connectivity: 4 or 8.

    Returns:
        (labels, count): int array where background is 0 and regions are
        numbered 1..count contiguously (raster order of first pixel when the
        pure-python path is used; scipy's order on the fast path).
    """
    src = ensure_binary(mask)
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    try:  # Fast path: scipy, when available, labels large masks in C.
        from scipy import ndimage  # type: ignore

        structure = np.ones((3, 3), dtype=bool)
        if connectivity == 4:
            structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)
        labels, count = ndimage.label(src, structure=structure)
        return labels.astype(np.int64), int(count)
    except ImportError:  # pragma: no cover - exercised only without scipy
        pass
    height, width = src.shape
    labels = np.zeros((height, width), dtype=np.int64)
    uf = _UnionFind()
    # Pass 1: provisional labels, recording equivalences.
    for y in range(height):
        row = src[y]
        for x in range(width):
            if not row[x]:
                continue
            neighbours = []
            if x > 0 and src[y, x - 1]:
                neighbours.append(labels[y, x - 1])
            if y > 0:
                if src[y - 1, x]:
                    neighbours.append(labels[y - 1, x])
                if connectivity == 8:
                    if x > 0 and src[y - 1, x - 1]:
                        neighbours.append(labels[y - 1, x - 1])
                    if x + 1 < width and src[y - 1, x + 1]:
                        neighbours.append(labels[y - 1, x + 1])
            if not neighbours:
                labels[y, x] = uf.make()
            else:
                smallest = min(neighbours)
                labels[y, x] = smallest
                for n in neighbours:
                    uf.union(smallest, n)
    # Pass 2: resolve equivalences to contiguous labels.
    remap: dict[int, int] = {}
    next_label = 1
    flat = labels.ravel()
    for i in range(flat.size):
        if flat[i] == 0:
            continue
        root = uf.find(int(flat[i]))
        if root not in remap:
            remap[root] = next_label
            next_label += 1
        flat[i] = remap[root]
    return labels, next_label - 1


@dataclass(frozen=True)
class Blob:
    """Statistics of one connected region.

    Attributes:
        label: Region label in the label image.
        area: Pixel count.
        bbox: Tight bounding box.
        centroid: (cx, cy) mean pixel position.
        extent: area / bbox.area in (0, 1]; circular blobs ~ pi/4.
        aspect: bbox width / height.
    """

    label: int
    area: int
    bbox: Rect
    centroid: tuple[float, float]

    @property
    def extent(self) -> float:
        return self.area / self.bbox.area

    @property
    def aspect(self) -> float:
        return self.bbox.aspect


def blob_statistics(labels: np.ndarray, count: int) -> list[Blob]:
    """Per-region statistics from a label image produced by ``label_components``."""
    if count == 0:
        return []
    arr = np.asarray(labels)
    blobs: list[Blob] = []
    ys, xs = np.nonzero(arr)
    values = arr[ys, xs]
    for lab in range(1, count + 1):
        sel = values == lab
        if not np.any(sel):
            continue
        bx = xs[sel]
        by = ys[sel]
        x1, x2 = int(bx.min()), int(bx.max())
        y1, y2 = int(by.min()), int(by.max())
        blobs.append(
            Blob(
                label=lab,
                area=int(sel.sum()),
                bbox=Rect(float(x1), float(y1), float(x2 - x1 + 1), float(y2 - y1 + 1)),
                centroid=(float(bx.mean()), float(by.mean())),
            )
        )
    return blobs


def find_blobs(mask: np.ndarray, min_area: int = 1, connectivity: int = 8) -> list[Blob]:
    """Label a mask and return statistics of regions with area >= min_area."""
    labels, count = label_components(mask, connectivity=connectivity)
    return [b for b in blob_statistics(labels, count) if b.area >= min_area]
