"""Color-space conversion: RGB <-> YCbCr (ITU-R BT.601).

The dark-condition pipeline of the paper thresholds both the *luminance*
channel (light sources are bright) and the *chrominance* channels (taillights
are red), so the library standardises on BT.601 YCbCr, the color space that
HDTV camera front-ends commonly deliver.

All conversions operate on float images in [0, 1].  Cb and Cr are centered:
they are returned in [-0.5, 0.5] so that "red" is simply a positive Cr.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_gray, ensure_rgb

# BT.601 luma coefficients.
_KR = 0.299
_KG = 0.587
_KB = 0.114


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an (H, W, 3) RGB image in [0, 1] to YCbCr.

    Returns:
        (H, W, 3) array with Y in [0, 1] and Cb, Cr in [-0.5, 0.5].
    """
    arr = ensure_rgb(rgb, "rgb")
    r = arr[..., 0]
    g = arr[..., 1]
    b = arr[..., 2]
    y = _KR * r + _KG * g + _KB * b
    cb = (b - y) / (2.0 * (1.0 - _KB))
    cr = (r - y) / (2.0 * (1.0 - _KR))
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr`; output clipped to [0, 1]."""
    arr = np.asarray(ycbcr, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"ycbcr image must have shape (H, W, 3), got {arr.shape}")
    y = arr[..., 0]
    cb = arr[..., 1]
    cr = arr[..., 2]
    r = y + 2.0 * (1.0 - _KR) * cr
    b = y + 2.0 * (1.0 - _KB) * cb
    g = (y - _KR * r - _KB * b) / _KG
    return np.clip(np.stack([r, g, b], axis=-1), 0.0, 1.0)


def luminance(rgb: np.ndarray) -> np.ndarray:
    """BT.601 luma plane of an RGB image."""
    arr = ensure_rgb(rgb, "rgb")
    return _KR * arr[..., 0] + _KG * arr[..., 1] + _KB * arr[..., 2]


def split_channels(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The paper's "Split Chroma & Luminance" stage (Fig. 4).

    Returns:
        (y, cb, cr) planes; Y in [0, 1], Cb/Cr in [-0.5, 0.5].
    """
    ycbcr = rgb_to_ycbcr(rgb)
    return ycbcr[..., 0], ycbcr[..., 1], ycbcr[..., 2]


def redness(rgb: np.ndarray) -> np.ndarray:
    """Cr chroma plane; large positive values indicate red light sources."""
    _, _, cr = split_channels(rgb)
    return cr


def gray_to_rgb(gray: np.ndarray) -> np.ndarray:
    """Replicate a gray plane into three channels."""
    arr = ensure_gray(gray, "gray")
    return np.repeat(arr[..., np.newaxis], 3, axis=2)
