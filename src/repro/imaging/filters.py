"""Spatial filtering: 2-D convolution, separable Gaussian, Sobel, box blur.

Implemented directly on numpy (no scipy dependency in the core library) so
the functional behaviour of the hardware pipelines can be mirrored exactly.
Border handling follows the hardware convention of edge replication, which is
what line-buffer-based streaming filters implement on an FPGA.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_gray


def pad_replicate(image: np.ndarray, top: int, bottom: int, left: int, right: int) -> np.ndarray:
    """Edge-replicating pad, the border mode used by streaming HW filters."""
    arr = ensure_gray(image)
    if min(top, bottom, left, right) < 0:
        raise ImageError("padding amounts must be non-negative")
    return np.pad(arr, ((top, bottom), (left, right)), mode="edge")


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Same-size 2-D convolution with edge replication.

    The kernel is flipped (true convolution).  Kernel sides must be odd so
    the output aligns with the input grid.
    """
    arr = ensure_gray(image)
    ker = np.asarray(kernel, dtype=np.float64)
    if ker.ndim != 2:
        raise ImageError(f"kernel must be 2-D, got shape {ker.shape}")
    kh, kw = ker.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ImageError(f"kernel sides must be odd, got {ker.shape}")
    ry, rx = kh // 2, kw // 2
    padded = pad_replicate(arr, ry, ry, rx, rx)
    flipped = ker[::-1, ::-1]
    height, width = arr.shape
    out = np.zeros_like(arr)
    # Accumulate shifted copies; O(kh*kw) vectorised passes beats a pixel loop.
    for dy in range(kh):
        for dx in range(kw):
            out += flipped[dy, dx] * padded[dy : dy + height, dx : dx + width]
    return out


def convolve_separable(image: np.ndarray, ky: np.ndarray, kx: np.ndarray) -> np.ndarray:
    """Convolution with a separable kernel given as column and row vectors."""
    col = np.asarray(ky, dtype=np.float64).reshape(-1, 1)
    row = np.asarray(kx, dtype=np.float64).reshape(1, -1)
    return convolve2d(convolve2d(image, col), row)


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalised 1-D Gaussian taps."""
    if sigma <= 0:
        raise ImageError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = max(1, int(round(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    taps = np.exp(-(xs**2) / (2.0 * sigma**2))
    return taps / taps.sum()


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with edge replication."""
    taps = gaussian_kernel1d(sigma)
    return convolve_separable(image, taps, taps)


def box_blur(image: np.ndarray, size: int) -> np.ndarray:
    """Mean filter over a ``size`` x ``size`` neighbourhood (odd size)."""
    if size < 1 or size % 2 == 0:
        raise ImageError(f"box size must be odd and >= 1, got {size}")
    kernel = np.full((size, size), 1.0 / (size * size))
    return convolve2d(image, kernel)


# Sobel taps: the 3x3 operator every HOG hardware front-end approximates.
SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
SOBEL_Y = SOBEL_X.T.copy()


def sobel(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel derivatives (gx, gy)."""
    arr = ensure_gray(image)
    gx = convolve2d(arr, SOBEL_X)
    gy = convolve2d(arr, SOBEL_Y)
    return gx, gy


def central_gradient(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """[-1, 0, 1] central-difference gradients, the Dalal-Triggs choice.

    Dalal & Triggs found that the simple 1-D mask outperforms Sobel for HOG;
    the paper's HOG accelerators use the same mask for its trivial hardware
    cost (one subtractor per pixel).
    """
    arr = ensure_gray(image)
    padded = pad_replicate(arr, 1, 1, 1, 1)
    gx = 0.5 * (padded[1:-1, 2:] - padded[1:-1, :-2])
    gy = 0.5 * (padded[2:, 1:-1] - padded[:-2, 1:-1])
    return gx, gy
