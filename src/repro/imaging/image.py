"""Image validation and basic array plumbing.

The library passes images around as plain numpy arrays: ``float64`` (or
``float32``) in ``[0, 1]`` with shape ``(H, W)`` for grayscale/binary planes
and ``(H, W, 3)`` for RGB.  These helpers centralise the shape/range checks so
every operator can assume well-formed input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.geometry import Rect


def ensure_gray(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate a 2-D float image and return it as float64."""
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ImageError(f"{name} must be 2-D (H, W), got shape {arr.shape}")
    if arr.size == 0:
        raise ImageError(f"{name} must be non-empty")
    return arr.astype(np.float64, copy=False)


def ensure_rgb(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate an (H, W, 3) float image and return it as float64."""
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"{name} must have shape (H, W, 3), got {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ImageError(f"{name} must be non-empty")
    return arr.astype(np.float64, copy=False)


def ensure_binary(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate a 2-D mask whose values are only 0 and 1; returns bool array."""
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ImageError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.dtype == bool:
        return arr
    unique = np.unique(arr)
    if not np.all(np.isin(unique, (0, 1))):
        raise ImageError(f"{name} must contain only 0/1 values")
    return arr.astype(bool)


def clip01(image: np.ndarray) -> np.ndarray:
    """Clamp an image into the canonical [0, 1] range."""
    return np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)


def crop(image: np.ndarray, rect: Rect) -> np.ndarray:
    """Extract the integer-rounded sub-image covered by ``rect``.

    The rectangle is clipped to the image; raises :class:`ImageError` when the
    clipped region is empty.
    """
    arr = np.asarray(image)
    height, width = arr.shape[:2]
    clipped = rect.clipped(width, height)
    if clipped is None:
        raise ImageError(f"crop rect {rect} lies outside image of shape {arr.shape}")
    x, y, w, h = clipped.as_int()
    x = min(max(x, 0), width - 1)
    y = min(max(y, 0), height - 1)
    w = min(w, width - x)
    h = min(h, height - y)
    return arr[y : y + h, x : x + w]


def paste(canvas: np.ndarray, patch: np.ndarray, x: int, y: int) -> None:
    """Blit ``patch`` onto ``canvas`` at (x, y), clipping at borders.

    Operates in place.  Patches fully outside the canvas are a no-op.
    """
    canvas_arr = np.asarray(canvas)
    patch_arr = np.asarray(patch)
    if canvas_arr.ndim != patch_arr.ndim:
        raise ImageError(
            f"canvas ({canvas_arr.ndim}-D) and patch ({patch_arr.ndim}-D) dims differ"
        )
    ch, cw = canvas_arr.shape[:2]
    ph, pw = patch_arr.shape[:2]
    x1, y1 = max(x, 0), max(y, 0)
    x2, y2 = min(x + pw, cw), min(y + ph, ch)
    if x2 <= x1 or y2 <= y1:
        return
    canvas[y1:y2, x1:x2] = patch_arr[y1 - y : y2 - y, x1 - x : x2 - x]


def blend(canvas: np.ndarray, patch: np.ndarray, x: int, y: int, alpha: float) -> None:
    """Alpha-blend ``patch`` onto ``canvas`` at (x, y) in place."""
    if not 0.0 <= alpha <= 1.0:
        raise ImageError(f"alpha must be in [0, 1], got {alpha}")
    canvas_arr = np.asarray(canvas)
    patch_arr = np.asarray(patch)
    ch, cw = canvas_arr.shape[:2]
    ph, pw = patch_arr.shape[:2]
    x1, y1 = max(x, 0), max(y, 0)
    x2, y2 = min(x + pw, cw), min(y + ph, ch)
    if x2 <= x1 or y2 <= y1:
        return
    region = canvas[y1:y2, x1:x2]
    source = patch_arr[y1 - y : y2 - y, x1 - x : x2 - x]
    canvas[y1:y2, x1:x2] = (1.0 - alpha) * region + alpha * source


def additive_light(canvas: np.ndarray, patch: np.ndarray, x: int, y: int) -> None:
    """Add a light-source patch onto ``canvas`` (clipped to 1.0) in place.

    Models how emissive sources (taillights, headlights, street lamps)
    combine with the scene: light adds rather than replaces.
    """
    canvas_arr = np.asarray(canvas)
    patch_arr = np.asarray(patch)
    ch, cw = canvas_arr.shape[:2]
    ph, pw = patch_arr.shape[:2]
    x1, y1 = max(x, 0), max(y, 0)
    x2, y2 = min(x + pw, cw), min(y + ph, ch)
    if x2 <= x1 or y2 <= y1:
        return
    region = canvas[y1:y2, x1:x2]
    source = patch_arr[y1 - y : y2 - y, x1 - x : x2 - x]
    canvas[y1:y2, x1:x2] = np.clip(region + source, 0.0, 1.0)
