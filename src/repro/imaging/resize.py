"""Image resampling: nearest-neighbour, area (box) and bilinear resize.

The dark pipeline downsamples the thresholded 1920x1080 frame to 640x360
(paper Fig. 4) before the morphological and DBN stages.  Downsampling by an
integer factor uses *area* averaging — what a hardware decimator with an
accumulator tree implements — while arbitrary resizes use bilinear sampling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_binary, ensure_gray


def downsample_area(image: np.ndarray, factor: int) -> np.ndarray:
    """Integer-factor downsample by averaging ``factor`` x ``factor`` tiles.

    The image dimensions must be divisible by ``factor``; the hardware block
    asserts the same alignment (1920/3 = 640, 1080/3 = 360).
    """
    arr = ensure_gray(image)
    if factor < 1:
        raise ImageError(f"factor must be >= 1, got {factor}")
    height, width = arr.shape
    if height % factor or width % factor:
        raise ImageError(
            f"image shape {arr.shape} is not divisible by downsample factor {factor}"
        )
    reshaped = arr.reshape(height // factor, factor, width // factor, factor)
    return reshaped.mean(axis=(1, 3))


def downsample_binary(mask: np.ndarray, factor: int, vote: float = 0.25) -> np.ndarray:
    """Downsample a binary mask: tile becomes 1 when >= ``vote`` fraction set.

    A plain area-average-then-threshold decimator.  The default vote of 1/4
    keeps small taillight blobs alive through the 3x decimation while
    suppressing single noisy pixels.
    """
    src = ensure_binary(mask)
    if not 0.0 < vote <= 1.0:
        raise ImageError(f"vote must be in (0, 1], got {vote}")
    averaged = downsample_area(src.astype(np.float64), factor)
    return averaged >= vote


def resize_nearest(image: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Nearest-neighbour resize to an arbitrary output shape."""
    arr = np.asarray(image)
    if arr.ndim not in (2, 3):
        raise ImageError(f"image must be 2-D or 3-D, got shape {arr.shape}")
    if out_height < 1 or out_width < 1:
        raise ImageError("output shape must be positive")
    in_h, in_w = arr.shape[:2]
    ys = np.minimum((np.arange(out_height) + 0.5) * in_h / out_height, in_h - 1).astype(int)
    xs = np.minimum((np.arange(out_width) + 0.5) * in_w / out_width, in_w - 1).astype(int)
    return arr[np.ix_(ys, xs)] if arr.ndim == 2 else arr[np.ix_(ys, xs)]


def resize_bilinear(image: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Bilinear resize of a 2-D plane (align-corners=False convention)."""
    arr = ensure_gray(image)
    if out_height < 1 or out_width < 1:
        raise ImageError("output shape must be positive")
    in_h, in_w = arr.shape
    if in_h == out_height and in_w == out_width:
        return arr.copy()
    ys = (np.arange(out_height) + 0.5) * in_h / out_height - 0.5
    xs = (np.arange(out_width) + 0.5) * in_w / out_width - 0.5
    ys = np.clip(ys, 0.0, in_h - 1.0)
    xs = np.clip(xs, 0.0, in_w - 1.0)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, np.newaxis]
    wx = (xs - x0)[np.newaxis, :]
    top = arr[np.ix_(y0, x0)] * (1 - wx) + arr[np.ix_(y0, x1)] * wx
    bottom = arr[np.ix_(y1, x0)] * (1 - wx) + arr[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def resize_rgb_bilinear(image: np.ndarray, out_height: int, out_width: int) -> np.ndarray:
    """Bilinear resize applied per channel of an (H, W, 3) image."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"expected (H, W, 3) image, got {arr.shape}")
    planes = [resize_bilinear(arr[..., c], out_height, out_width) for c in range(3)]
    return np.stack(planes, axis=-1)


def pyramid_scales(
    min_size: tuple[int, int],
    image_size: tuple[int, int],
    scale_step: float = 1.2,
) -> list[float]:
    """Scale factors for a coarse-to-fine detection pyramid.

    Produces factors f (<= 1) such that the *downscaled* image at each level
    still contains the detector window ``min_size`` = (height, width).
    """
    if scale_step <= 1.0:
        raise ImageError(f"scale_step must be > 1, got {scale_step}")
    win_h, win_w = min_size
    img_h, img_w = image_size
    if win_h > img_h or win_w > img_w:
        return []
    scales = []
    factor = 1.0
    while img_h * factor >= win_h and img_w * factor >= win_w:
        scales.append(factor)
        factor /= scale_step
    return scales
