"""Thresholding: fixed binary, Otsu, and multilevel histogram thresholds.

The dark-condition detector's first stage (paper Fig. 3/4) is background
subtraction by thresholding both the luminance and chrominance planes and
merging the two masks.  Otsu and multilevel thresholding are included because
the night-detection literature the paper builds on (Chen et al. [6]) uses
automatic multilevel histogram thresholding; they also make the pipeline
robust to the synthetic datasets' exposure spread.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import ensure_gray


def binary_threshold(image: np.ndarray, threshold: float, above: bool = True) -> np.ndarray:
    """Fixed-threshold binarisation.

    Args:
        image: 2-D plane (any real range, e.g. Y in [0,1] or Cr in [-0.5,0.5]).
        threshold: Cut value.
        above: When True, pixels strictly greater than the threshold become 1.

    Returns:
        Boolean mask of the same shape.
    """
    arr = ensure_gray(image)
    return arr > threshold if above else arr < threshold


def band_threshold(image: np.ndarray, low: float, high: float) -> np.ndarray:
    """Mask of pixels inside the closed band [low, high]."""
    if low > high:
        raise ImageError(f"band is empty: low={low} > high={high}")
    arr = ensure_gray(image)
    return (arr >= low) & (arr <= high)


def histogram(image: np.ndarray, bins: int = 256, value_range: tuple[float, float] = (0.0, 1.0)) -> np.ndarray:
    """Intensity histogram with ``bins`` equal-width bins over ``value_range``."""
    if bins < 2:
        raise ImageError(f"need at least 2 bins, got {bins}")
    arr = ensure_gray(image)
    counts, _ = np.histogram(arr, bins=bins, range=value_range)
    return counts.astype(np.int64)


def otsu_threshold(image: np.ndarray, bins: int = 256, value_range: tuple[float, float] = (0.0, 1.0)) -> float:
    """Otsu's between-class-variance-maximising threshold.

    Returns the threshold *value* (in the units of ``value_range``), not a
    bin index.  Degenerate (constant) images return the midpoint.
    """
    counts = histogram(image, bins=bins, value_range=value_range).astype(np.float64)
    total = counts.sum()
    lo, hi = value_range
    if total == 0:
        raise ImageError("empty image")
    centers = lo + (np.arange(bins) + 0.5) * (hi - lo) / bins
    weight_bg = np.cumsum(counts)
    weight_fg = total - weight_bg
    cum_mean = np.cumsum(counts * centers)
    grand_mean = cum_mean[-1]
    valid = (weight_bg > 0) & (weight_fg > 0)
    if not np.any(valid):
        return (lo + hi) / 2.0
    mean_bg = np.where(valid, cum_mean / np.maximum(weight_bg, 1e-12), 0.0)
    mean_fg = np.where(valid, (grand_mean - cum_mean) / np.maximum(weight_fg, 1e-12), 0.0)
    between = weight_bg * weight_fg * (mean_bg - mean_fg) ** 2
    between[~valid] = -1.0
    # Between-class variance plateaus across empty histogram gaps; take the
    # plateau midpoint (the classical tie-break) and cut at the *upper edge*
    # of that bin so pixels inside the chosen background bin stay background.
    peak = between.max()
    plateau = np.flatnonzero(between >= peak - 1e-12 * max(peak, 1.0))
    best = int(round(plateau.mean()))
    bin_width = (hi - lo) / bins
    return float(lo + (best + 1) * bin_width)


def multilevel_thresholds(
    image: np.ndarray,
    levels: int = 2,
    bins: int = 128,
    value_range: tuple[float, float] = (0.0, 1.0),
) -> list[float]:
    """Automatic multilevel thresholding by recursive Otsu splitting.

    Splits the histogram into ``levels + 1`` classes by repeatedly applying
    Otsu to the widest remaining segment — the scheme used for headlight /
    taillight segmentation in nighttime traffic surveillance [6].

    Returns:
        Sorted list of ``levels`` threshold values.
    """
    if levels < 1:
        raise ImageError(f"levels must be >= 1, got {levels}")
    arr = ensure_gray(image)
    segments: list[tuple[float, float]] = [value_range]
    cuts: list[float] = []
    for _ in range(levels):
        # Split the segment holding the most pixels.
        def seg_count(seg: tuple[float, float]) -> int:
            return int(np.count_nonzero((arr >= seg[0]) & (arr <= seg[1])))

        segments.sort(key=seg_count, reverse=True)
        lo, hi = segments.pop(0)
        masked = arr[(arr >= lo) & (arr <= hi)]
        if masked.size < 2 or np.isclose(masked.min(), masked.max()):
            cut = (lo + hi) / 2.0
        else:
            cut = otsu_threshold(masked.reshape(1, -1), bins=bins, value_range=(lo, hi))
        cuts.append(cut)
        segments.extend([(lo, cut), (cut, hi)])
    return sorted(cuts)


def light_source_mask(
    luma: np.ndarray,
    luma_threshold: float | None = None,
    margin: float = 0.0,
) -> np.ndarray:
    """Mask of bright (potential light-source) pixels in a luma plane.

    When no threshold is given, Otsu picks one and ``margin`` shifts it up —
    at night the histogram is dominated by darkness, so a small positive
    margin suppresses dim reflections.
    """
    if luma_threshold is None:
        luma_threshold = otsu_threshold(luma) + margin
    return binary_threshold(luma, luma_threshold, above=True)
