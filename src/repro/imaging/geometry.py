"""Axis-aligned rectangles and box arithmetic.

Rectangles are the common currency between detectors, the dataset ground
truth, and evaluation.  ``Rect`` uses the image convention: ``x`` grows to the
right (columns), ``y`` grows downwards (rows), and the box spans the
half-open pixel range ``[x, x + w) x [y, y + h)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import GeometryError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in pixel coordinates.

    Attributes:
        x: Left edge (column of the first pixel inside the box).
        y: Top edge (row of the first pixel inside the box).
        w: Width in pixels; must be positive.
        h: Height in pixels; must be positive.
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise GeometryError(f"Rect must have positive size, got w={self.w}, h={self.h}")

    @property
    def x2(self) -> float:
        """Exclusive right edge."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Exclusive bottom edge."""
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> tuple[float, float]:
        """(cx, cy) of the box center."""
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def aspect(self) -> float:
        """Width divided by height."""
        return self.w / self.h

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy moved by (dx, dy)."""
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def scaled(self, factor: float) -> "Rect":
        """Return a copy with all coordinates multiplied by ``factor``.

        Useful for mapping detections between pyramid levels or between a
        downsampled processing resolution and the native frame.
        """
        if factor <= 0:
            raise GeometryError(f"scale factor must be positive, got {factor}")
        return Rect(self.x * factor, self.y * factor, self.w * factor, self.h * factor)

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` pixels on every side."""
        if self.w + 2 * margin <= 0 or self.h + 2 * margin <= 0:
            raise GeometryError("expansion would collapse the rectangle")
        return Rect(self.x - margin, self.y - margin, self.w + 2 * margin, self.h + 2 * margin)

    def clipped(self, width: float, height: float) -> "Rect | None":
        """Clip to the image extent ``[0, width) x [0, height)``.

        Returns ``None`` when the rectangle lies entirely outside the image.
        """
        x1 = max(self.x, 0.0)
        y1 = max(self.y, 0.0)
        x2 = min(self.x2, float(width))
        y2 = min(self.y2, float(height))
        if x2 <= x1 or y2 <= y1:
            return None
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def contains_point(self, px: float, py: float) -> bool:
        """True when (px, py) lies inside the half-open box."""
        return self.x <= px < self.x2 and self.y <= py < self.y2

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection box, or ``None`` when disjoint."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return None
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both boxes."""
        x1 = min(self.x, other.x)
        y1 = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def iou(self, other: "Rect") -> float:
        """Intersection-over-union in [0, 1]."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        union = self.area + other.area - inter.area
        return inter.area / union

    def center_distance(self, other: "Rect") -> float:
        """Euclidean distance between box centers."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return math.hypot(cx1 - cx2, cy1 - cy2)

    def as_int(self) -> tuple[int, int, int, int]:
        """Rounded integer (x, y, w, h), width/height at least 1."""
        x = int(round(self.x))
        y = int(round(self.y))
        w = max(1, int(round(self.w)))
        h = max(1, int(round(self.h)))
        return (x, y, w, h)


def iou_matrix(boxes_a: Sequence[Rect], boxes_b: Sequence[Rect]):
    """Pairwise IoU between two box lists as a nested list.

    Kept dependency-free (plain lists) because callers typically hold a
    handful of detections, not thousands.
    """
    return [[a.iou(b) for b in boxes_b] for a in boxes_a]


def non_max_suppression(
    boxes: Sequence[Rect],
    scores: Sequence[float],
    iou_threshold: float = 0.5,
) -> list[int]:
    """Greedy non-maximum suppression.

    Args:
        boxes: Candidate boxes.
        scores: One score per box; higher is better.
        iou_threshold: Boxes overlapping a kept box by more than this are
            suppressed.

    Returns:
        Indices of kept boxes, in decreasing score order.
    """
    if len(boxes) != len(scores):
        raise GeometryError(
            f"boxes and scores must align, got {len(boxes)} boxes and {len(scores)} scores"
        )
    if not 0.0 <= iou_threshold <= 1.0:
        raise GeometryError(f"iou_threshold must be in [0, 1], got {iou_threshold}")
    order = sorted(range(len(boxes)), key=lambda i: scores[i], reverse=True)
    kept: list[int] = []
    for idx in order:
        if all(boxes[idx].iou(boxes[k]) <= iou_threshold for k in kept):
            kept.append(idx)
    return kept


def merge_overlapping(boxes: Iterable[Rect], iou_threshold: float = 0.3) -> list[Rect]:
    """Merge clusters of mutually overlapping boxes into their union bounds.

    A simple single-linkage clustering: any two boxes with IoU above the
    threshold end up in the same cluster.  Used by the dark pipeline to fuse
    taillight pair candidates that localise the same vehicle.
    """
    pool = list(boxes)
    merged: list[Rect] = []
    while pool:
        seed = pool.pop()
        changed = True
        while changed:
            changed = False
            for i in range(len(pool) - 1, -1, -1):
                if seed.iou(pool[i]) > iou_threshold:
                    seed = seed.union_bounds(pool.pop(i))
                    changed = True
        merged.append(seed)
    return merged


def match_detections(
    truths: Sequence[Rect],
    detections: Sequence[Rect],
    iou_threshold: float = 0.5,
) -> tuple[list[tuple[int, int]], list[int], list[int]]:
    """Greedy one-to-one matching of detections to ground-truth boxes.

    Returns:
        (matches, unmatched_truths, unmatched_detections) where ``matches``
        is a list of (truth_index, detection_index) pairs.

    The greedy order is pinned: candidate pairs are taken by descending
    IoU, ties broken by ascending truth index then ascending detection
    index.  Equal-overlap ties are common with grid-aligned boxes, and an
    unpinned order would make TP/FP splits (and therefore the quality
    plane's byte-compared records) platform- and insertion-order-dependent.
    """
    pairs: list[tuple[float, int, int]] = []
    for ti, t in enumerate(truths):
        for di, d in enumerate(detections):
            overlap = t.iou(d)
            if overlap >= iou_threshold:
                pairs.append((overlap, ti, di))
    pairs.sort(key=lambda pair: (-pair[0], pair[1], pair[2]))
    used_t: set[int] = set()
    used_d: set[int] = set()
    matches: list[tuple[int, int]] = []
    for _, ti, di in pairs:
        if ti in used_t or di in used_d:
            continue
        used_t.add(ti)
        used_d.add(di)
        matches.append((ti, di))
    unmatched_t = [i for i in range(len(truths)) if i not in used_t]
    unmatched_d = [i for i in range(len(detections)) if i not in used_d]
    return matches, unmatched_t, unmatched_d
