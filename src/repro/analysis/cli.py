"""The ``python -m repro lint`` subcommand.

Exit codes follow linter convention: 0 clean (or within baseline when
``--compare-baseline`` is given), 1 violations found (or baseline
regressions), 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    compare_baseline,
    load_baseline,
    render_comparison,
    write_baseline,
)
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.core import all_rules, analyze_paths, iter_python_files
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.errors import ConfigurationError


def _parse_rule_list(raw: str | None) -> tuple[str, ...]:
    if not raw:
        return ()
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    known = {rule.id for rule in all_rules()}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown rule(s): {', '.join(unknown)} (known: {', '.join(sorted(known))})"
        )
    return names


def render_rule_catalog() -> str:
    """The ``--rules`` markdown catalog (ANALYSIS.md embeds this verbatim)."""
    rules = sorted(all_rules(), key=lambda r: (r.family, r.id))
    lines = [
        "| rule | family | summary |",
        "| --- | --- | --- |",
    ]
    for rule in rules:
        summary = " ".join(rule.summary.split())
        lines.append(f"| `{rule.id}` | {rule.family} | {summary} |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run reprolint over the given paths; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "reprolint: whole-program determinism-taint / fork-safety / "
            "export-hygiene / naming checks"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif-out",
        metavar="PATH",
        default=None,
        help="also write a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze modules with N forked processes (default: 1)",
    )
    parser.add_argument(
        "--compare-baseline",
        nargs="?",
        const=DEFAULT_BASELINE_PATH,
        default=None,
        metavar="PATH",
        help=(
            "gate against a committed baseline: exit 1 only on findings "
            f"beyond it (default path: {DEFAULT_BASELINE_PATH})"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        nargs="?",
        const=DEFAULT_BASELINE_PATH,
        default=None,
        metavar="PATH",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalog as a markdown table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule.id) for rule in all_rules())
        for rule in all_rules():
            print(f"  {rule.id:<{width}}  {rule.summary}")
        return 0
    if args.rules:
        print(render_rule_catalog())
        return 0

    if args.jobs < 1:
        print("reprolint: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        config = replace(
            DEFAULT_CONFIG,
            select=_parse_rule_list(args.select),
            ignore=_parse_rule_list(args.ignore),
        )
        paths = args.paths or ["src"]
        files_checked = sum(1 for _ in iter_python_files(paths))
        violations = analyze_paths(paths, config, jobs=args.jobs)
        if args.sarif_out:
            Path(args.sarif_out).write_text(
                render_sarif(violations, files_checked=files_checked) + "\n"
            )
        if args.update_baseline:
            write_baseline(args.update_baseline, violations)
            print(
                f"reprolint: baseline written to {args.update_baseline} "
                f"({len(violations)} finding(s) across {files_checked} files)"
            )
            return 0
        if args.compare_baseline:
            baseline = load_baseline(args.compare_baseline)
            comparison = compare_baseline(violations, baseline)
            print(render_comparison(comparison, violations))
            return 0 if comparison.ok else 1
    except ConfigurationError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    renderers = {"text": render_text, "json": render_json, "sarif": render_sarif}
    print(renderers[args.format](violations, files_checked=files_checked))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro lint
    sys.exit(main())
