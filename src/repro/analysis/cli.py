"""The ``python -m repro lint`` subcommand.

Exit codes follow linter convention: 0 clean, 1 violations found,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.core import all_rules, analyze_paths, iter_python_files
from repro.analysis.reporters import render_json, render_text
from repro.errors import ConfigurationError


def _parse_rule_list(raw: str | None) -> tuple[str, ...]:
    if not raw:
        return ()
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    known = {rule.id for rule in all_rules()}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown rule(s): {', '.join(unknown)} (known: {', '.join(sorted(known))})"
        )
    return names


def main(argv: list[str] | None = None) -> int:
    """Run reprolint over the given paths; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="reprolint: determinism / unit-naming / telemetry-hygiene checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule.id) for rule in all_rules())
        for rule in all_rules():
            print(f"  {rule.id:<{width}}  {rule.summary}")
        return 0

    try:
        config = replace(
            DEFAULT_CONFIG,
            select=_parse_rule_list(args.select),
            ignore=_parse_rule_list(args.ignore),
        )
        paths = args.paths or ["src"]
        files_checked = sum(1 for _ in iter_python_files(paths))
        violations = analyze_paths(paths, config)
    except ConfigurationError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations, files_checked=files_checked))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro lint
    sys.exit(main())
