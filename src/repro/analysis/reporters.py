"""Violation reporters: human-readable text, JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json

from repro.analysis.core import Violation, all_rules


def render_text(violations: list[Violation], *, files_checked: int) -> str:
    """ruff-style one-line-per-violation report with a summary tail."""
    lines = [v.render() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(
        f"reprolint: {len(violations)} {noun} in {files_checked} files checked"
    )
    return "\n".join(lines)


def render_json(violations: list[Violation], *, files_checked: int) -> str:
    """Stable JSON document: summary header plus one entry per violation."""
    return json.dumps(
        {
            "tool": "reprolint",
            "files_checked": files_checked,
            "violation_count": len(violations),
            "violations": [v.to_dict() for v in violations],
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(violations: list[Violation], *, files_checked: int) -> str:
    """SARIF 2.1.0 document (the interchange format CI annotators consume).

    The driver advertises every registered rule (so SARIF viewers can
    show the full catalog), plus a synthetic entry for any pseudo-rule
    present in the results (``syntax-error``).
    """
    rules_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": (rule.__doc__ or rule.summary).strip()},
            "properties": {"family": rule.family},
        }
        for rule in all_rules()
    ]
    known = {meta["id"] for meta in rules_meta}
    for rule_id in sorted({v.rule_id for v in violations} - known):
        rules_meta.append(
            {"id": rule_id, "shortDescription": {"text": rule_id}}
        )
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}
    results = [
        {
            "ruleId": v.rule_id,
            "ruleIndex": rule_index[v.rule_id],
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path.replace("\\", "/")},
                        "region": {"startLine": v.line, "startColumn": v.col},
                    }
                }
            ],
        }
        for v in violations
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": "2.0.0",
                        "informationUri": "ANALYSIS.md",
                        "rules": rules_meta,
                    }
                },
                "results": results,
                "properties": {"filesChecked": files_checked},
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
