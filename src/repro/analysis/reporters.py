"""Violation reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.core import Violation


def render_text(violations: list[Violation], *, files_checked: int) -> str:
    """ruff-style one-line-per-violation report with a summary tail."""
    lines = [v.render() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(
        f"reprolint: {len(violations)} {noun} in {files_checked} files checked"
    )
    return "\n".join(lines)


def render_json(violations: list[Violation], *, files_checked: int) -> str:
    """Stable JSON document: summary header plus one entry per violation."""
    return json.dumps(
        {
            "tool": "reprolint",
            "files_checked": files_checked,
            "violation_count": len(violations),
            "violations": [v.to_dict() for v in violations],
        },
        indent=2,
        sort_keys=True,
    )
