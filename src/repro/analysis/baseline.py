"""Ratcheting lint baseline, mirroring the ``BENCH_*.json`` gate.

A whole-program analyzer grows new rule families faster than legacy code
can be cleaned up.  Rather than either silencing the new rules or
breaking the build on day one, the committed ``LINT_BASELINE.json``
records the accepted findings as ``path::rule`` counts.  The gate
(``repro lint --compare-baseline``) fails only when a count *exceeds*
its baseline — new findings block, legacy findings are tracked, and
every fix ratchets the baseline down via ``--update-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Iterable

from repro.analysis.core import Violation
from repro.errors import ConfigurationError

BASELINE_SCHEMA = "repro.analysis/baseline"
BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = "LINT_BASELINE.json"


def normalize_path(path: str) -> str:
    """A run-location-independent form of a violation path.

    Paths are rebased at the last ``src`` component and joined with
    forward slashes, so a run from the repo root and a run over an
    absolute path produce identical baseline keys.
    """
    parts = list(PurePath(path).parts)
    if "src" in parts:
        last_src = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last_src:]
    return PurePath(*parts).as_posix() if parts else ""


def baseline_key(violation: Violation) -> str:
    return f"{normalize_path(violation.path)}::{violation.rule_id}"


def collect_counts(violations: Iterable[Violation]) -> dict[str, int]:
    """Current findings as sorted ``path::rule -> count``."""
    counts = Counter(baseline_key(v) for v in violations)
    return dict(sorted(counts.items()))


def write_baseline(path: str | Path, violations: Iterable[Violation]) -> None:
    document = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_VERSION,
        "counts": collect_counts(violations),
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict[str, int]:
    baseline_path = Path(path)
    if not baseline_path.is_file():
        raise ConfigurationError(
            f"no lint baseline at {baseline_path}; create one with "
            "`repro lint --update-baseline`"
        )
    try:
        document = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"unreadable lint baseline {baseline_path}: {exc}")
    if document.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"{baseline_path} is not a lint baseline "
            f"(schema={document.get('schema')!r})"
        )
    counts = document.get("counts", {})
    if not isinstance(counts, dict):
        raise ConfigurationError(f"{baseline_path}: counts must be an object")
    return {str(key): int(value) for key, value in counts.items()}


@dataclass
class BaselineComparison:
    """The verdict of current findings against a committed baseline."""

    #: ``(key, current_count, allowed_count)`` for keys over budget.
    regressions: list[tuple[str, int, int]] = field(default_factory=list)
    #: ``(key, baseline_count, current_count)`` for keys under budget.
    improvements: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_baseline(
    violations: Iterable[Violation], baseline: dict[str, int]
) -> BaselineComparison:
    current = collect_counts(violations)
    comparison = BaselineComparison()
    for key in sorted(set(current) | set(baseline)):
        now = current.get(key, 0)
        allowed = baseline.get(key, 0)
        if now > allowed:
            comparison.regressions.append((key, now, allowed))
        elif now < allowed:
            comparison.improvements.append((key, allowed, now))
    return comparison


def render_comparison(
    comparison: BaselineComparison, violations: Iterable[Violation]
) -> str:
    """Human-readable gate verdict, new findings rendered individually."""
    lines: list[str] = []
    if comparison.regressions:
        regressed_keys = {key for key, _, _ in comparison.regressions}
        lines.append("reprolint baseline: NEW FINDINGS")
        for violation in violations:
            if baseline_key(violation) in regressed_keys:
                lines.append(f"  {violation.render()}")
        for key, now, allowed in comparison.regressions:
            lines.append(f"  {key}: {now} findings (baseline allows {allowed})")
    else:
        lines.append("reprolint baseline: ok (no findings beyond baseline)")
    if comparison.improvements:
        fixed = sum(before - now for _, before, now in comparison.improvements)
        lines.append(
            f"  {fixed} baselined finding(s) fixed — ratchet with "
            "`repro lint --update-baseline`"
        )
    return "\n".join(lines)
