"""reprolint: domain-specific static analysis for the reproduction.

The paper's headline numbers (390 MB/s ICAP streaming, the 20 ms
reconfiguration that costs exactly one frame at 50 fps) are re-derivable
only because the simulator is deterministic and every number carries its
unit.  This package machine-checks that discipline: an AST-based rule
framework with project-specific rules for determinism (no wall clocks or
ad-hoc RNG in sim domains), unit-suffix naming, telemetry hygiene
(span lifetimes, event vocabulary), error-swallowing, mutable defaults,
and public-API documentation.

Entry points:

* ``python -m repro lint [PATHS]`` — the CLI (see :mod:`repro.analysis.cli`);
* :func:`analyze_paths` / :func:`analyze_source` — the library API;
* ``tests/analysis/test_self_clean.py`` — the suite that keeps ``src/``
  permanently clean.

See ``ANALYSIS.md`` at the repository root for the rule catalog and the
suppression syntax.
"""

from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.core import (
    ModuleContext,
    Rule,
    Violation,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    register,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register",
    "render_json",
    "render_text",
]
