"""Determinism rules: no wall clocks, no ad-hoc RNG in sim domains.

Byte-identical fault replay (PR 1) and metrics-derived paper numbers
(PR 2) both assume the simulation packages never read the host clock and
never construct their own random generators.  The telemetry layer is the
sole wall-clock injection point; :mod:`repro.rng` is the sole RNG
construction point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register

# Canonical definitions moved to the project pass (the taint engine needs
# them too); re-exported here because these were this module's public names.
from repro.analysis.project import (  # noqa: F401
    WALL_CLOCK_CALLS,
    WALL_CLOCK_SUFFIXES,
    dotted_name,
)


@register
class WallClockRule(Rule):
    """Sim domains must not read the host clock directly."""

    id = "determinism-clock"
    family = "determinism"
    summary = (
        "no wall-clock reads (time.time/perf_counter/datetime.now) in "
        "simulation packages; clocks arrive via telemetry injection"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        cfg = module.config
        if not cfg.in_sim_domain(module.module):
            return
        if cfg.is_clock_injection_point(module.module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in WALL_CLOCK_CALLS or name.endswith(WALL_CLOCK_SUFFIXES):
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call {name}() in sim domain {module.module}; "
                    "inject a clock through the telemetry layer instead",
                )


@register
class AdHocRngRule(Rule):
    """Sim domains construct RNGs only through repro.rng."""

    id = "determinism-rng"
    family = "determinism"
    summary = (
        "no stdlib random or direct numpy RNG construction in simulation "
        "packages; use repro.rng helpers"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        cfg = module.config
        if not cfg.in_sim_domain(module.module) or cfg.is_rng_helper(module.module):
            return
        helper = cfg.rng_helper_module
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module,
                            node,
                            f"stdlib random imported in sim domain; use {helper}",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("random", "numpy.random"):
                    yield self.violation(
                        module,
                        node,
                        f"RNG primitives imported from {node.module}; use {helper}",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.startswith("random."):
                    yield self.violation(
                        module,
                        node,
                        f"stdlib {name}() in sim domain; use {helper}",
                    )
                elif ".random." in name and (
                    name.startswith("np.random.") or name.startswith("numpy.random.")
                ):
                    yield self.violation(
                        module,
                        node,
                        f"direct {name}() in sim domain; construct generators "
                        f"with {helper}.make_rng(seed)",
                    )
                elif name == "default_rng":
                    yield self.violation(
                        module,
                        node,
                        f"bare default_rng() in sim domain; use {helper}.make_rng(seed)",
                    )
