"""Batched-hot-path hygiene: no per-window scoring loops outside references.

The sliding-window scans score every window of a frame through one batched
kernel call (``decision_batch`` / ``predict_batch``); the per-window loops
survive only as ``*_reference`` branches the equivalence suite pins the hot
path against.  A ``model.predict(...)`` or ``model.decision_values(...)``
call inside a ``for``/``while`` loop in a pipeline module is therefore a
regression back to the slow shape — easy to introduce in review-sized
diffs, invisible to the unit tests (the output is byte-identical either
way), and only caught late by the bench gate.  This rule catches it at
lint time.

Exemption: functions whose name contains ``reference`` — that is the
naming convention for the sanctioned slow branches.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register

# Per-sample scoring entry points; their *_batch twins are the hot path.
PER_WINDOW_SCORERS = frozenset({"predict", "predict_proba", "decision_values"})


def _scorer_name(call: ast.Call) -> str | None:
    """The flagged method name of ``call``, when it is a scorer call.

    A scorer is always handed features; a zero-argument ``predict()`` is
    something else (e.g. a track's kinematic prediction) and stays legal.
    """
    func = call.func
    if not (call.args or call.keywords):
        return None
    if isinstance(func, ast.Attribute) and func.attr in PER_WINDOW_SCORERS:
        return func.attr
    return None


@register
class BatchedHotPathRule(Rule):
    """Pipeline loops must score through the batched entry points."""

    id = "batched-hot-path"
    family = "performance"
    summary = (
        "per-window predict/decision calls inside pipeline loops must use "
        "the *_batch entry points (per-window loops only in *_reference "
        "branches)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if not module.config.in_hot_path(module.module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _scorer_name(node)
            if name is None:
                continue
            if not self._inside_loop(module, node):
                continue
            if self._in_reference_branch(module, node):
                continue
            yield self.violation(
                module,
                node,
                f"per-window {name}() call inside a loop; score the whole "
                f"batch with the *_batch entry point, or move the loop into "
                f"a *_reference function",
            )

    @staticmethod
    def _inside_loop(module: ModuleContext, node: ast.AST) -> bool:
        """True when a for/while loop sits between ``node`` and its function.

        Loops in *enclosing* functions do not count: a scorer call at the
        top level of a helper is the helper's business even when some
        caller loops over frames.
        """
        current = module.parent(node)
        while current is not None:
            if isinstance(current, (ast.For, ast.AsyncFor, ast.While)):
                return True
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return False
            # Comprehensions iterate too — a listcomp over windows is the
            # same per-window loop in different clothes.
            if isinstance(
                current, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                return True
            current = module.parent(current)
        return False

    @staticmethod
    def _in_reference_branch(module: ModuleContext, node: ast.AST) -> bool:
        """True when the nearest enclosing function is a reference branch."""
        current = module.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return "reference" in current.name
            current = module.parent(current)
        return False
