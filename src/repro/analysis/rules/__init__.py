"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401
    api,
    determinism,
    exports,
    fleet,
    forksafety,
    hotpath,
    monitor,
    perf,
    pragma,
    quality,
    robustness,
    taint,
    telemetry,
    units,
)
