"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401
    api,
    determinism,
    fleet,
    hotpath,
    monitor,
    perf,
    robustness,
    telemetry,
    units,
)
