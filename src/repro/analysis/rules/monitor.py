"""Monitor-hygiene rules: the incident-event vocabulary.

``Monitor.emit_event`` kinds name rows in incident bundles, telemetry
mirrors, and the post-mortem timeline.  A kind outside the declared
vocabulary is an event no bundle loader, report section, or acceptance
test will ever look for — the runtime rejects it, but only when that
code path actually fires; the lint catches it at review time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register


@register
class MonitorEventVocabularyRule(Rule):
    """``Monitor.emit_event`` kinds come from the declared vocabulary."""

    id = "monitor-event-vocabulary"
    family = "telemetry"
    summary = (
        "Monitor.emit_event kinds must be string literals from the declared "
        "vocabulary (repro.monitor.events.MONITOR_EVENT_KINDS)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        vocabulary = module.config.monitor_vocabulary
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit_event"
            ):
                continue
            # Monitor.emit_event(kind, time_s, **attrs)
            kind_node: ast.expr | None = None
            if node.args:
                kind_node = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind_node = keyword.value
            if kind_node is None:
                continue
            if not (isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str)):
                yield self.violation(
                    module,
                    kind_node,
                    "emit_event kind must be a string literal so the "
                    "vocabulary is statically checkable",
                )
                continue
            if kind_node.value not in vocabulary:
                known = ", ".join(sorted(vocabulary))
                yield self.violation(
                    module,
                    kind_node,
                    f"emit_event kind {kind_node.value!r} is not in the "
                    f"declared monitor vocabulary ({known}); add it to "
                    "repro.monitor.events.MONITOR_EVENT_KINDS first",
                )
