"""Bench-suite hygiene: registered, unit-suffixed, and clock-free suites.

The bench runner owns all timing and seeds all workloads, so a suite
module that times itself (wall-clock reads) or defines unregistered
benchmark functions silently escapes the BENCH_*.json trajectory.  This
rule holds everything under ``repro.perf.suites`` to the suite contract:

* every public top-level function is ``@bench``-registered (helpers stay
  private with a leading underscore);
* the registered name carries a unit suffix (``_ms``, ``_s``, ...);
* no wall-clock calls anywhere in the module — the runner measures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register
from repro.analysis.rules.determinism import WALL_CLOCK_CALLS, dotted_name


def _bench_decorator_call(node: ast.FunctionDef) -> ast.Call | None:
    """The ``@bench(...)`` decorator call on ``node``, if any."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = dotted_name(decorator.func)
            if name is not None and name.split(".")[-1] == "bench":
                return decorator
    return None


@register
class BenchRegistryRule(Rule):
    """Suite modules follow the @bench contract."""

    id = "bench-registry"
    family = "performance"
    summary = (
        "perf suite functions must be @bench-registered with unit-suffixed "
        "names and must not read wall clocks (the runner owns timing)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        cfg = module.config
        if not cfg.in_bench_suite(module.module):
            return
        suffixes = "/".join(sorted(cfg.unit_suffixes))
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            decorator = _bench_decorator_call(node)
            if decorator is None:
                yield self.violation(
                    module,
                    node,
                    f"suite function {node.name}() is not @bench-registered; "
                    "register it or make it a _private helper",
                )
                continue
            name_arg = decorator.args[0] if decorator.args else None
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                bench_name = name_arg.value
                if bench_name.lower().split("_")[-1] not in cfg.unit_suffixes:
                    yield self.violation(
                        module,
                        decorator,
                        f"bench name {bench_name!r} has no unit suffix "
                        f"(expected one of: {suffixes})",
                    )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call {name}() in bench suite {module.module}; "
                    "the bench runner owns all timing",
                )
