"""Determinism-taint rule: wall values must not reach deterministic sinks.

The repo's central correctness property is byte-identical output across
the three execution modes (per-window reference, batched kernels, sharded
fleet workers).  The artefacts that get byte-compared are produced by a
small set of *deterministic sinks* — ``deterministic_view``,
``deterministic_outcome_dict``, ``deterministic_metrics``, the frame-core
canonicalizers and ``frames_digest``.  Any wall-clock, environment, or
entropy-derived value reaching a sink argument breaks the comparison in a
way no unit test notices until two runs happen to disagree.

This rule consumes the project pass: function return values carry
interprocedural taint summaries (``ProjectContext.wall_tainted_functions``,
a fixpoint over the call graph), and the shared :class:`TaintEvaluator`
tracks flow through locals, containers, arithmetic and ``with`` bindings
inside each scope.  Values stored under the wall strip keys
(``WALL_METRIC_NAMES`` / ``WALL_OUTCOME_FIELDS`` / ``WALL_ROLLUP_KEYS``)
are laundered — the deterministic views strip exactly those keys, so the
wall value never survives into the artefact.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register
from repro.analysis.project import (
    TaintEvaluator,
    dotted_name,
    iter_scopes,
    walk_scope,
)


@register
class DeterministicSinkTaintRule(Rule):
    """Interprocedural wall-taint must never reach a deterministic sink."""

    id = "taint-deterministic-sink"
    family = "determinism-taint"
    summary = (
        "wall-clock/env/RNG-derived value flows into a deterministic sink "
        "(deterministic_view, frame cores, frames_digest) without being "
        "laundered through the wall strip keys"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        cfg = module.config
        sinks = cfg.deterministic_sinks
        summaries = (
            module.project.wall_tainted_functions
            if module.project is not None
            else frozenset()
        )
        evaluator = TaintEvaluator(
            project=module.project,
            module=module.module,
            strip_keys=cfg.wall_strip_keys,
            summaries=summaries,
        )
        for scope_name, body in iter_scopes(module.tree):
            tainted = evaluator.scan_body(body)
            for node in walk_scope(body):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                sink = name.split(".")[-1]
                if sink not in sinks:
                    continue
                where = "" if scope_name == "<module>" else f" in {scope_name}()"
                for arg in node.args:
                    if evaluator.expr_tainted(arg, tainted):
                        yield self.violation(
                            module,
                            arg,
                            f"wall-clock/entropy-derived value reaches "
                            f"deterministic sink {sink}(){where}; strip it "
                            "via the wall strip keys or drop it before the sink",
                        )
                for keyword in node.keywords:
                    if keyword.arg is not None and keyword.arg in cfg.wall_strip_keys:
                        continue
                    if evaluator.expr_tainted(keyword.value, tainted):
                        yield self.violation(
                            module,
                            keyword.value,
                            f"wall-clock/entropy-derived value reaches "
                            f"deterministic sink {sink}() via keyword "
                            f"{keyword.arg or '**'}{where}",
                        )
