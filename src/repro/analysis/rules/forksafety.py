"""Fork-safety rules for the fleet worker pool.

``repro.fleet`` forks worker processes and ships work across
``multiprocessing`` queues.  Three classes of mistake survive every unit
test and then wedge or diverge a real fleet:

* **Untimed blocking** — a bare ``queue.get()`` or ``process.join()``
  blocks forever when the peer crashed; every blocking call in the fork
  packages must carry a timeout so the containment logic gets a turn.
* **Unpicklable payloads** — lambdas, closures, generators, open handles,
  tracers/monitors/locks captured into a queue ``put()`` or a
  ``DriveSpec`` die at pickle time (or worse, only on the spawn platform).
* **Fork-shared mutable state** — module-level containers mutated inside
  the worker module silently diverge: each forked child mutates its own
  copy-on-write page and the parent never sees it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register
from repro.analysis.project import dotted_name, iter_scopes, walk_scope

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "appendleft",
        "extendleft",
    }
)


def _queue_like(name: str | None) -> bool:
    return name is not None and "queue" in name.lower()


@register
class ForkQueueTimeoutRule(Rule):
    """Blocking queue/process waits in fork packages must carry timeouts."""

    id = "fork-queue-timeout"
    family = "fork-safety"
    summary = (
        "blocking queue get() / process join() without a timeout in "
        "fork-managed code can hang the fleet when a peer dies"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if not module.config.in_fork_package(module.module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            if node.args or any(k.arg in ("timeout", "block") for k in node.keywords):
                continue
            receiver = dotted_name(node.func.value)
            if node.func.attr == "get":
                if _queue_like(receiver):
                    yield self.violation(
                        module,
                        node,
                        f"{receiver}.get() blocks forever if the producer "
                        "died; pass a timeout and loop on queue.Empty",
                    )
            elif node.func.attr == "join" and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    f"{receiver or 'process'}.join() without a timeout can "
                    "hang shutdown; join with a timeout and escalate",
                )


@register
class ForkUnpicklableRule(Rule):
    """Nothing unpicklable may cross the fork boundary."""

    id = "fork-unpicklable"
    family = "fork-safety"
    summary = (
        "lambda/closure/open-handle/tracer-like object reaches a worker "
        "queue put() or a fork payload constructor (DriveSpec)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        cfg = module.config
        if not cfg.in_fork_package(module.module):
            return
        for scope_name, body in iter_scopes(module.tree):
            in_function = scope_name != "<module>"
            bad_names = self._collect_bad_names(body, cfg, in_function)
            for node in walk_scope(body):
                if not isinstance(node, ast.Call):
                    continue
                target = self._payload_target(node, cfg)
                if target is None:
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    reason = self._unpicklable(arg, cfg, bad_names)
                    if reason is not None:
                        yield self.violation(
                            module,
                            arg,
                            f"{reason} passed to {target}; it cannot cross "
                            "the fork/pickle boundary",
                        )

    def _payload_target(self, call: ast.Call, cfg) -> str | None:
        """A description of the fork boundary this call feeds, if any."""
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "put",
            "put_nowait",
        ):
            receiver = dotted_name(call.func.value)
            if _queue_like(receiver):
                return f"{receiver}.{call.func.attr}()"
        name = dotted_name(call.func)
        if name is not None and name.split(".")[-1] in cfg.fork_payload_types:
            return f"{name.split('.')[-1]}(...)"
        return None

    def _collect_bad_names(
        self, body: list[ast.stmt], cfg, in_function: bool
    ) -> dict[str, str]:
        """Scope names bound to unpicklable values (one level deep)."""
        bad: dict[str, str] = {}
        for node in walk_scope(body):
            if isinstance(node, ast.Assign):
                reason = self._unpicklable(node.value, cfg, bad)
                if reason is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bad[target.id] = reason
        if in_function:
            # Functions defined inside another function are closures:
            # picklable module-level defs they are not.
            for stmt in body:
                if isinstance(stmt, _FuncDef):
                    bad[stmt.name] = f"nested function {stmt.name!r} (closure)"
        return bad

    def _unpicklable(self, expr: ast.expr, cfg, bad_names: dict[str, str]) -> str | None:
        if isinstance(expr, ast.Lambda):
            return "lambda"
        if isinstance(expr, ast.GeneratorExp):
            return "generator expression"
        if isinstance(expr, ast.Name) and expr.id in bad_names:
            return bad_names[expr.id]
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name == "open":
                return "open file handle"
            if name is not None and name.split(".")[-1] in (
                cfg.fork_unpicklable_constructors
            ):
                return f"{name.split('.')[-1]} instance"
            return None
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for element in expr.elts:
                reason = self._unpicklable(element, cfg, bad_names)
                if reason is not None:
                    return reason
            return None
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is None:
                    continue
                reason = self._unpicklable(value, cfg, bad_names)
                if reason is not None:
                    return reason
            return None
        return None


@register
class ForkSharedStateRule(Rule):
    """Worker-module functions must not mutate module-level containers."""

    id = "fork-shared-state"
    family = "fork-safety"
    summary = (
        "module-level mutable state mutated inside a forked worker module "
        "diverges between parent and children"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        cfg = module.config
        if not cfg.is_fork_worker_module(module.module):
            return
        own = module.summary
        if own is None:
            return

        def mutable_global(name: str) -> bool:
            if name in own.mutable_globals:
                return True
            # An imported binding resolving to another module's
            # module-level mutable container is shared state too.
            if module.project is not None and name in own.bindings:
                target = module.project.resolve(module.module, name)
                if target is not None:
                    owner, _, leaf = target.rpartition(".")
                    owner_summary = module.project.summaries.get(owner)
                    if owner_summary is not None:
                        return leaf in owner_summary.mutable_globals
            return False

        for scope_name, body in iter_scopes(module.tree):
            if scope_name == "<module>":
                continue  # import-time mutation happens pre-fork, uniformly
            declared_global: set[str] = set()
            for node in walk_scope(body):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in walk_scope(body):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and mutable_global(node.func.value.id)
                ):
                    yield self.violation(
                        module,
                        node,
                        f"{node.func.value.id}.{node.func.attr}() mutates "
                        f"module-level state inside forked {scope_name}(); "
                        "each child mutates its own copy — pass state "
                        "explicitly or return it via the result queue",
                    )
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and mutable_global(target.value.id)
                        ):
                            yield self.violation(
                                module,
                                target,
                                f"{target.value.id}[...] assignment mutates "
                                f"module-level state inside forked "
                                f"{scope_name}(); forked children diverge",
                            )
                        elif (
                            isinstance(target, ast.Name)
                            and target.id in declared_global
                            and target.id in own.mutable_globals
                        ):
                            yield self.violation(
                                module,
                                target,
                                f"global {target.id} rebound inside forked "
                                f"{scope_name}(); forked children diverge",
                            )
