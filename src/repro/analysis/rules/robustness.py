"""Robustness rules: no swallowed errors, no mutable default arguments.

The graceful-degradation paths (PR 1) promise that every fault leaves an
audit trail; a bare ``except`` or an ``except Exception: pass`` is a
degradation event that never reaches the FrameRecord/ReconfigReport log.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register

_BROAD = frozenset({"Exception", "BaseException"})
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_noop(statement: ast.stmt) -> bool:
    if isinstance(statement, ast.Pass):
        return True
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and statement.value.value is ...
    )


def _broad_names(handler_type: ast.expr) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in _BROAD for e in handler_type.elts)
    return False


@register
class SwallowedErrorRule(Rule):
    """No bare ``except:`` and no silently dropped broad exceptions."""

    id = "swallowed-error"
    family = "robustness"
    summary = (
        "no bare except clauses, and except Exception handlers must do "
        "something (degradations leave an audit trail)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare except clause catches SystemExit/KeyboardInterrupt "
                    "too; name the exception types",
                )
            elif _broad_names(node.type) and all(_is_noop(s) for s in node.body):
                yield self.violation(
                    module,
                    node,
                    "broad exception silently swallowed; record the failure "
                    "(audit trail) or narrow the type",
                )


@register
class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    id = "mutable-default"
    family = "robustness"
    summary = "no list/dict/set literals (or constructors) as parameter defaults"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                mutable = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    owner = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in {owner}(); use None and "
                        "construct inside the body (or a dataclass field factory)",
                    )
