"""Quality-plane hygiene rules: the quality-event vocabulary.

``quality_event`` kinds name rows in quality traces the baseline tooling
and the observability docs enumerate.  A kind outside the declared
vocabulary (:data:`repro.quality.events.QUALITY_EVENT_KINDS`) is an
event no reader will ever look for — the runtime rejects it, but only
when that code path actually fires; the lint catches it at review time.
Unlike the monitor/fleet emitters, ``quality_event`` exists both as a
method (``ModelQualityObserver.quality_event``) and as a module-level
helper, so the rule matches both call shapes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register


def _is_quality_event_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "quality_event"
    if isinstance(func, ast.Name):
        return func.id == "quality_event"
    return False


@register
class QualityEventVocabularyRule(Rule):
    """``quality_event`` kinds come from the declared vocabulary."""

    id = "quality-event-vocabulary"
    family = "telemetry"
    summary = (
        "quality_event kinds must be string literals from the declared "
        "vocabulary (repro.quality.events.QUALITY_EVENT_KINDS)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        vocabulary = module.config.quality_vocabulary
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_quality_event_call(node)):
                continue
            # quality_event(kind, **attrs) — free function or method.
            kind_node: ast.expr | None = None
            if node.args:
                kind_node = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind_node = keyword.value
            if kind_node is None:
                continue
            if not (isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str)):
                yield self.violation(
                    module,
                    kind_node,
                    "quality_event kind must be a string literal so the "
                    "vocabulary is statically checkable",
                )
                continue
            if kind_node.value not in vocabulary:
                known = ", ".join(sorted(vocabulary))
                yield self.violation(
                    module,
                    kind_node,
                    f"quality_event kind {kind_node.value!r} is not in the "
                    f"declared quality vocabulary ({known}); add it to "
                    "repro.quality.events.QUALITY_EVENT_KINDS first",
                )
