"""Export hygiene and import-cycle rules (whole-program).

``__all__`` is the contract a package publishes; a stale entry breaks
``from pkg import *`` and misleads every reader.  Dead re-exports in
``__init__.py`` keep modules import-coupled for no reason.  And a runtime
import cycle is a load-order landmine: whichever module imports first
sees a half-initialised peer.  All three need the project pass — a
single-file linter cannot know what a sibling module actually defines.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register


@register
class ExportHygieneRule(Rule):
    """``__all__`` must match reality; ``__init__`` re-exports must earn
    their keep."""

    id = "export-hygiene"
    family = "exports"
    summary = (
        "__all__ entry with no matching definition, duplicate __all__ "
        "entry, or dead __init__ re-export (neither exported nor used)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        summary = module.summary
        if summary is None or summary.exports is None:
            return
        exported = {name for name, _ in summary.exports}
        seen: set[str] = set()
        for name, lineno in summary.exports:
            if name in seen:
                yield Violation(
                    rule_id=self.id,
                    path=module.path,
                    line=lineno,
                    col=1,
                    message=f"duplicate __all__ entry {name!r}",
                )
            seen.add(name)
            if name not in summary.defs:
                yield Violation(
                    rule_id=self.id,
                    path=module.path,
                    line=lineno,
                    col=1,
                    message=(
                        f"__all__ exports {name!r} but the module defines "
                        "no such name"
                    ),
                )
        if not module.path.endswith("__init__.py"):
            return
        for name, (origin, lineno) in sorted(summary.from_imports.items()):
            if name.startswith("_") or name in exported:
                continue
            if name in summary.used_names:
                continue
            yield Violation(
                rule_id=self.id,
                path=module.path,
                line=lineno,
                col=1,
                message=(
                    f"dead re-export: {name!r} (from {origin}) is neither "
                    "listed in __all__ nor used in this package init"
                ),
            )


@register
class ImportCycleRule(Rule):
    """No runtime import cycles between project modules."""

    id = "import-cycle"
    family = "exports"
    summary = (
        "runtime (non-TYPE_CHECKING) module-level import cycle between "
        "project modules"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        project = module.project
        if project is None:
            return
        for cycle in project.import_cycles():
            # Each cycle is reported exactly once, by its smallest member.
            if cycle[0] != module.module:
                continue
            successor = cycle[1] if len(cycle) > 1 else cycle[0]
            lineno = project.import_graph.get(module.module, {}).get(successor, 1)
            chain = " -> ".join(cycle + [cycle[0]])
            yield Violation(
                rule_id=self.id,
                path=module.path,
                line=lineno,
                col=1,
                message=(
                    f"runtime import cycle: {chain}; break it with a "
                    "function-local or TYPE_CHECKING import"
                ),
            )
