"""Unit-suffix naming: time/throughput values must say their unit.

The paper's numbers are unit-laden (390 MB/s, 20 ms, 50 fps); a
``duration`` field that might be seconds or milliseconds is exactly how a
reproduction silently misreads them.  Any parameter or annotated field
whose name contains a time- or throughput-like stem must end in a unit
suffix (``_s``, ``_ms``, ``_us``, ``_mbs``, ...).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register

#: Annotations that clearly carry no physical unit.
_NON_NUMERIC = frozenset({"str", "bool", "bytes", "Callable"})


def _clearly_non_numeric(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _NON_NUMERIC
    return isinstance(node, ast.Name) and node.id in _NON_NUMERIC


def missing_unit_suffix(name: str, module: ModuleContext) -> bool:
    """True when ``name`` looks unit-bearing but declares no unit."""
    cfg = module.config
    tokens = name.lower().split("_")
    if not any(token in cfg.unit_stems for token in tokens):
        return False
    return tokens[-1] not in cfg.unit_suffixes


@register
class UnitSuffixRule(Rule):
    """Time/throughput names must end in a unit suffix."""

    id = "unit-suffix"
    family = "naming"
    summary = (
        "parameters and fields named like durations/throughputs must carry "
        "a unit suffix (_s/_ms/_us/_mbs/...)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        suffixes = "/".join(sorted(module.config.unit_suffixes))
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                    if arg.arg in ("self", "cls"):
                        continue
                    if _clearly_non_numeric(arg.annotation):
                        continue
                    if missing_unit_suffix(arg.arg, module):
                        yield self.violation(
                            module,
                            arg,
                            f"parameter {arg.arg!r} of {node.name}() carries a "
                            f"time/throughput quantity but no unit suffix "
                            f"(expected one of: {suffixes})",
                        )
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _clearly_non_numeric(node.annotation):
                    continue
                if missing_unit_suffix(node.target.id, module):
                    yield self.violation(
                        module,
                        node.target,
                        f"field {node.target.id!r} carries a time/throughput "
                        f"quantity but no unit suffix (expected one of: {suffixes})",
                    )
