"""Suppression hygiene: pragmas must name real rules and actually work.

A ``# reprolint: skip=determinsm-clock`` typo used to silently suppress
nothing while the author believed the line was covered; a
``skip-file`` pragma below the first-10-lines window was silently inert.
Both are now findings: the suppression machinery stays strict and the
analyzer tells you when a pragma does not do what it says.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import (
    _SKIP_FILE_SCAN_LINES,
    ModuleContext,
    Rule,
    Violation,
    all_rules,
    register,
)


@register
class SuppressionHygieneRule(Rule):
    """Pragmas referencing unknown rules or placed where they are inert."""

    id = "suppression-hygiene"
    family = "suppressions"
    summary = (
        "# reprolint: pragma names an unknown rule or uses skip-file "
        "outside the first-10-lines window (where it has no effect)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        known = {rule.id for rule in all_rules()} | {"syntax-error"}
        for pragma in module.pragmas:
            for name in pragma.rules:
                if name not in known:
                    yield Violation(
                        rule_id=self.id,
                        path=module.path,
                        line=pragma.line,
                        col=pragma.col,
                        message=(
                            f"suppression names unknown rule {name!r}; "
                            "it suppresses nothing (typo?)"
                        ),
                    )
            if pragma.kind == "skip-file" and pragma.line > _SKIP_FILE_SCAN_LINES:
                yield Violation(
                    rule_id=self.id,
                    path=module.path,
                    line=pragma.line,
                    col=pragma.col,
                    message=(
                        f"skip-file pragma on line {pragma.line} is inert: "
                        f"it is only honoured within the first "
                        f"{_SKIP_FILE_SCAN_LINES} lines"
                    ),
                )
