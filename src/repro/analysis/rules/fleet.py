"""Fleet-hygiene rules: the scheduler-event vocabulary.

``FleetScheduler.fleet_event`` kinds name rows in fleet rollups
(``events_by_kind``) and the lifecycle timeline the acceptance tests
assert on.  A kind outside the declared vocabulary is an event no rollup
reader will ever look for — the runtime rejects it, but only when that
code path actually fires; the lint catches it at review time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register


@register
class FleetEventVocabularyRule(Rule):
    """``FleetScheduler.fleet_event`` kinds come from the declared vocabulary."""

    id = "fleet-event-vocabulary"
    family = "telemetry"
    summary = (
        "FleetScheduler.fleet_event kinds must be string literals from the "
        "declared vocabulary (repro.fleet.events.FLEET_EVENT_KINDS)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        vocabulary = module.config.fleet_vocabulary
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fleet_event"
            ):
                continue
            # FleetScheduler.fleet_event(kind, **attrs)
            kind_node: ast.expr | None = None
            if node.args:
                kind_node = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind_node = keyword.value
            if kind_node is None:
                continue
            if not (isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str)):
                yield self.violation(
                    module,
                    kind_node,
                    "fleet_event kind must be a string literal so the "
                    "vocabulary is statically checkable",
                )
                continue
            if kind_node.value not in vocabulary:
                known = ", ".join(sorted(vocabulary))
                yield self.violation(
                    module,
                    kind_node,
                    f"fleet_event kind {kind_node.value!r} is not in the "
                    f"declared fleet vocabulary ({known}); add it to "
                    "repro.fleet.events.FLEET_EVENT_KINDS first",
                )
