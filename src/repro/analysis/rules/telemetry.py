"""Telemetry-hygiene rules: span lifetimes and the event vocabulary.

A ``tracer.span(...)`` held outside a ``with`` block is a span leak — it
never closes, never records, and silently skews every aggregate derived
from the dump.  An ``emit`` kind outside the declared vocabulary is an
event no summary, exporter filter, or acceptance test will ever look for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register


@register
class SpanContextRule(Rule):
    """``.span(...)`` is only legal as a ``with`` context manager."""

    id = "span-context"
    family = "telemetry"
    summary = (
        "Tracer.span(...) must be used as a context manager (use "
        "begin()/end() for callback-driven spans)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if module.config.is_span_exempt(module.module):
            return
        with_items: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in with_items
            ):
                yield self.violation(
                    module,
                    node,
                    "span() result used outside a with-statement (span leak); "
                    "use tracer.begin()/end() for callback-driven spans",
                )


@register
class EventVocabularyRule(Rule):
    """``Trace.emit`` kinds come from the declared vocabulary."""

    id = "event-vocabulary"
    family = "telemetry"
    summary = (
        "Trace.emit event kinds must be string literals from the declared "
        "vocabulary (repro.zynq.events.EVENT_KINDS)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        vocabulary = module.config.event_vocabulary
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            # Trace.emit(time, source, kind, message, **attrs)
            kind_node: ast.expr | None = None
            if len(node.args) >= 3:
                kind_node = node.args[2]
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind_node = keyword.value
            if kind_node is None:
                continue
            if not (isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str)):
                yield self.violation(
                    module,
                    kind_node if kind_node is not None else node,
                    "emit kind must be a string literal so the vocabulary "
                    "is statically checkable",
                )
                continue
            if kind_node.value not in vocabulary:
                known = ", ".join(sorted(vocabulary))
                yield self.violation(
                    module,
                    kind_node,
                    f"emit kind {kind_node.value!r} is not in the declared "
                    f"event vocabulary ({known}); add it to "
                    "repro.zynq.events.EVENT_KINDS first",
                )
