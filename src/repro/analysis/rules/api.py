"""Public-API documentation rule for the pipelines and zynq packages.

These two packages are the reproduction's load-bearing surface — the
detection pipelines the tables are built from and the SoC model the
latency numbers come out of.  Every public function, class, and method
there must carry a docstring and complete type annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleContext, Rule, Violation, register

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _public(name: str) -> bool:
    return not name.startswith("_")


def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    missing = [
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if arg.arg not in ("self", "cls") and arg.annotation is None
    ]
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append("*" + star.arg)
    return missing


@register
class PublicApiRule(Rule):
    """Public surface of the API packages is documented and typed."""

    id = "public-api"
    family = "api"
    summary = (
        "public functions/classes/methods in repro.pipelines and repro.zynq "
        "need docstrings and complete type annotations"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if not module.config.in_api_package(module.module):
            return
        for statement in module.tree.body:
            if isinstance(statement, _FuncDef) and _public(statement.name):
                yield from self._check_function(module, statement, statement.name)
            elif isinstance(statement, ast.ClassDef) and _public(statement.name):
                if not ast.get_docstring(statement):
                    yield self.violation(
                        module,
                        statement,
                        f"public class {statement.name} has no docstring",
                    )
                for member in statement.body:
                    if isinstance(member, _FuncDef) and _public(member.name):
                        yield from self._check_function(
                            module, member, f"{statement.name}.{member.name}"
                        )

    def _check_function(
        self,
        module: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
    ) -> Iterator[Violation]:
        if not ast.get_docstring(node):
            yield self.violation(
                module, node, f"public function {qualname}() has no docstring"
            )
        if node.returns is None:
            yield self.violation(
                module, node, f"public function {qualname}() has no return annotation"
            )
        missing = _missing_annotations(node)
        if missing:
            yield self.violation(
                module,
                node,
                f"public function {qualname}() has unannotated parameters: "
                + ", ".join(missing),
            )
