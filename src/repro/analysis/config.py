"""Per-rule configuration for reprolint.

Everything a rule needs to know about *this* repository lives here: which
packages are simulation domains (and therefore must be deterministic),
which module is the sanctioned RNG injection point, what the telemetry
event vocabulary is, and which packages form the documented public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_event_vocabulary() -> frozenset[str]:
    # Single source of truth: the vocabulary declared next to Trace.emit.
    from repro.zynq.events import EVENT_KINDS

    return EVENT_KINDS


def _default_monitor_vocabulary() -> frozenset[str]:
    # Single source of truth: the vocabulary declared next to Monitor.emit_event.
    from repro.monitor.events import MONITOR_EVENT_KINDS

    return MONITOR_EVENT_KINDS


def _default_fleet_vocabulary() -> frozenset[str]:
    # Single source of truth: the vocabulary next to FleetScheduler.fleet_event.
    from repro.fleet.events import FLEET_EVENT_KINDS

    return FLEET_EVENT_KINDS


def _default_quality_vocabulary() -> frozenset[str]:
    # Single source of truth: the vocabulary next to quality_event.
    from repro.quality.events import QUALITY_EVENT_KINDS

    return QUALITY_EVENT_KINDS


def _default_wall_strip_keys() -> frozenset[str]:
    # Single source of truth: the strip lists next to the deterministic
    # views themselves — a wall value stored under one of these keys is
    # removed before any byte-compared artefact is built.
    from repro.fleet.outcome import WALL_METRIC_NAMES, WALL_OUTCOME_FIELDS
    from repro.fleet.rollup import WALL_ROLLUP_KEYS
    from repro.fleet.status import WALL_STATUS_KEYS
    from repro.quality.baseline import WALL_QUALITY_KEYS

    return (
        frozenset(WALL_METRIC_NAMES)
        | frozenset(WALL_OUTCOME_FIELDS)
        | frozenset(WALL_ROLLUP_KEYS)
        | frozenset(WALL_STATUS_KEYS)
        | frozenset(WALL_QUALITY_KEYS)
    )


@dataclass(frozen=True)
class LintConfig:
    """Repository-specific knobs consumed by the rules.

    Attributes:
        sim_domains: Packages whose behaviour feeds paper numbers; the
            determinism rules apply only inside them.
        clock_injection_modules: Modules allowed to touch the host wall
            clock (the telemetry layer injects it everywhere else).
        rng_helper_module: The one module allowed to construct raw RNGs;
            everything else goes through its helpers.
        unit_stems: Name fragments that mark a value as time- or
            throughput-like and therefore unit-bearing.
        unit_suffixes: Accepted unit suffixes (the paper's units).
        event_vocabulary: Legal ``Trace.emit`` event kinds.
        monitor_vocabulary: Legal ``Monitor.emit_event`` event kinds.
        fleet_vocabulary: Legal ``FleetScheduler.fleet_event`` event kinds.
        quality_vocabulary: Legal ``quality_event`` event kinds.
        api_packages: Packages whose public surface must carry docstrings
            and complete type annotations.
        span_exempt_modules: Modules implementing the span machinery
            itself (exempt from the context-manager rule).
        bench_suite_packages: Packages holding ``@bench`` suites, held to
            the bench-registry contract (registered, unit-suffixed,
            clock-free).
        hot_path_packages: Packages whose sliding-window scans must score
            through the batched entry points; per-window ``predict`` /
            ``decision`` calls inside loops are flagged there unless the
            enclosing function is a ``*_reference`` branch.
        deterministic_sinks: Function names whose arguments must be free
            of wall-clock/entropy taint (the byte-compared artefacts).
        wall_strip_keys: Dict keys / keyword names the deterministic
            views strip; storing a wall value under one launders it.
        fork_packages: Packages running under the fork-based worker pool;
            the fork-safety rules apply there.
        fork_worker_modules: Modules whose functions execute inside
            forked children (module-level mutable state diverges there).
        fork_payload_types: Constructors whose instances cross the fork
            boundary and therefore must stay picklable.
        fork_unpicklable_constructors: Constructors producing objects that
            must never be captured into a fork payload (tracers, monitors,
            locks, threads, open handles).
        select: When non-empty, only these rule ids run.
        ignore: Rule ids to skip.
    """

    sim_domains: tuple[str, ...] = (
        "repro.zynq",
        "repro.core",
        "repro.faults",
        "repro.pipelines",
        "repro.adaptive",
        "repro.experiments",
    )
    clock_injection_modules: tuple[str, ...] = ("repro.telemetry",)
    rng_helper_module: str = "repro.rng"
    unit_stems: frozenset[str] = frozenset(
        {
            "duration",
            "latency",
            "timeout",
            "elapsed",
            "interval",
            "delay",
            "period",
            "deadline",
            "throughput",
            "bandwidth",
        }
    )
    unit_suffixes: frozenset[str] = frozenset(
        {"s", "ms", "us", "ns", "mbs", "bps", "fps", "hz", "mhz", "cycles", "frames"}
    )
    event_vocabulary: frozenset[str] = field(default_factory=_default_event_vocabulary)
    monitor_vocabulary: frozenset[str] = field(default_factory=_default_monitor_vocabulary)
    fleet_vocabulary: frozenset[str] = field(default_factory=_default_fleet_vocabulary)
    quality_vocabulary: frozenset[str] = field(
        default_factory=_default_quality_vocabulary
    )
    api_packages: tuple[str, ...] = ("repro.pipelines", "repro.zynq")
    span_exempt_modules: tuple[str, ...] = ("repro.telemetry",)
    bench_suite_packages: tuple[str, ...] = ("repro.perf.suites",)
    hot_path_packages: tuple[str, ...] = ("repro.pipelines", "repro.core")
    deterministic_sinks: frozenset[str] = frozenset(
        {
            "deterministic_view",
            "deterministic_outcome_dict",
            "deterministic_metrics",
            "frame_core_dict",
            "frame_core_bytes",
            "frames_digest",
        }
    )
    wall_strip_keys: frozenset[str] = field(default_factory=_default_wall_strip_keys)
    fork_packages: tuple[str, ...] = ("repro.fleet",)
    fork_worker_modules: tuple[str, ...] = ("repro.fleet.worker",)
    fork_payload_types: frozenset[str] = frozenset({"DriveSpec"})
    fork_unpicklable_constructors: frozenset[str] = frozenset(
        {
            "Tracer",
            "JsonlTracer",
            "ChromeTracer",
            "Monitor",
            "HealthMonitor",
            "FlightRecorder",
            "Lock",
            "RLock",
            "Condition",
            "Semaphore",
            "BoundedSemaphore",
            "Event",
            "Thread",
        }
    )
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether a rule participates under the select/ignore filters."""
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def in_sim_domain(self, module: str) -> bool:
        """True when ``module`` lives in a determinism-critical package."""
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in self.sim_domains
        )

    def in_api_package(self, module: str) -> bool:
        """True when ``module`` is part of the documented public API."""
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in self.api_packages
        )

    def is_clock_injection_point(self, module: str) -> bool:
        """True for modules allowed to read the host wall clock."""
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.clock_injection_modules
        )

    def is_rng_helper(self, module: str) -> bool:
        """True for the sanctioned raw-RNG module."""
        return module == self.rng_helper_module

    def in_bench_suite(self, module: str) -> bool:
        """True when ``module`` is an ``@bench`` suite module."""
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.bench_suite_packages
        )

    def in_hot_path(self, module: str) -> bool:
        """True when ``module`` must keep its window scans batched."""
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.hot_path_packages
        )

    def is_span_exempt(self, module: str) -> bool:
        """True for modules implementing the span machinery."""
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.span_exempt_modules
        )

    def in_fork_package(self, module: str) -> bool:
        """True when ``module`` runs under the fork-based worker pool."""
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.fork_packages
        )

    def is_fork_worker_module(self, module: str) -> bool:
        """True when ``module``'s functions execute inside forked children."""
        return module in self.fork_worker_modules


DEFAULT_CONFIG = LintConfig()
