"""reprolint framework: violations, the rule registry, and the driver.

A rule is a class with an ``id``, a ``family``, a one-line ``summary``,
and a ``check(module)`` generator over :class:`Violation`.  Rules register
themselves with the :func:`register` decorator at import time.  The driver
parses every file once, builds a single whole-program
:class:`~repro.analysis.project.ProjectContext` (import graph, symbol
table, call edges, taint summaries), and hands every enabled rule one
:class:`ModuleContext` per file with the project attached — so rules can
reason across file boundaries, not just within one AST.

Suppressions are noqa-style comments tied to the violation's line::

    x = wall_clock()            # reprolint: skip
    y = wall_clock()            # reprolint: skip=determinism-clock

plus a whole-file form, honoured only within the first
``_SKIP_FILE_SCAN_LINES`` lines: ``reprolint: skip-file`` or
``reprolint: skip-file=unit-suffix,public-api`` as a comment near the top
of the file.  A blanket ``skip`` silences every rule on that line; a
``skip=`` list silences only the named rules.  Pragmas are read from real
comment tokens — pragma-shaped text inside string literals (like the
examples above) is ignored.  The ``suppression-hygiene`` rule reports
pragmas that name unknown rules or place ``skip-file`` too late to work.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.project import ParsedModule, ProjectContext, parse_module
from repro.errors import ConfigurationError

_PRAGMA = re.compile(r"#\s*reprolint:\s*(skip-file|skip)(?:=([\w,-]+))?")
_SKIP_FILE_SCAN_LINES = 10


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One ``# reprolint:`` comment, as found by the tokenizer."""

    line: int
    col: int
    kind: str  # "skip" | "skip-file"
    rules: tuple[str, ...]  # empty tuple = blanket (all rules)


def scan_pragmas(source: str) -> list[Pragma]:
    """Every ``# reprolint:`` pragma in real comment tokens.

    Tokenizing (rather than regex-scanning raw lines) means pragma-shaped
    text inside docstrings and string literals never creates a phantom
    suppression.  Falls back to the line scan only if tokenization fails.
    """
    pragmas: list[Pragma] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            kind, names = match.groups()
            rules = tuple(n for n in names.split(",") if n) if names else ()
            pragmas.append(
                Pragma(line=tok.start[0], col=tok.start[1] + 1, kind=kind, rules=rules)
            )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            kind, names = match.groups()
            rules = tuple(n for n in names.split(",") if n) if names else ()
            pragmas.append(Pragma(line=lineno, col=match.start() + 1, kind=kind, rules=rules))
    return pragmas


@dataclass
class _Suppressions:
    """Parsed pragma comments for one file."""

    file_wide: set[str] = field(default_factory=set)  # rule ids; "*" = all
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def suppressed(self, violation: Violation) -> bool:
        if "*" in self.file_wide or violation.rule_id in self.file_wide:
            return True
        rules = self.by_line.get(violation.line)
        if rules is None:
            return False
        return "*" in rules or violation.rule_id in rules


def _suppressions_from_pragmas(pragmas: Iterable[Pragma]) -> _Suppressions:
    sup = _Suppressions()
    for pragma in pragmas:
        rules = set(pragma.rules) if pragma.rules else {"*"}
        if pragma.kind == "skip-file":
            # Late skip-file pragmas are inert; suppression-hygiene flags them.
            if pragma.line <= _SKIP_FILE_SCAN_LINES:
                sup.file_wide |= rules
        else:
            sup.by_line.setdefault(pragma.line, set()).update(rules)
    return sup


def _parse_suppressions(source_lines: list[str]) -> _Suppressions:
    """Back-compat helper used by older tests; prefers the token scan."""
    return _suppressions_from_pragmas(scan_pragmas("\n".join(source_lines)))


@dataclass
class ModuleContext:
    """Everything a rule sees for one parsed file."""

    path: str
    module: str  # dotted name, e.g. "repro.zynq.bitstream"
    tree: ast.Module
    source_lines: list[str]
    config: LintConfig
    project: ProjectContext | None = None
    pragmas: list[Pragma] = field(default_factory=list)

    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (computed lazily, cached)."""
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    @property
    def summary(self):
        """This module's slice of the project symbol table (or ``None``)."""
        if self.project is None:
            return None
        return self.project.summaries.get(self.module)


class Rule:
    """Base class: subclasses override ``id``, ``family``, ``summary``,
    ``check``."""

    id: str = ""
    family: str = "general"
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Convenience constructor anchored at ``node``."""
        return Violation(
            rule_id=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    if not cls.id:
        raise ConfigurationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id."""
    _load_rules()
    if rule_id not in _REGISTRY:
        raise ConfigurationError(
            f"unknown rule {rule_id!r} (known: {', '.join(sorted(_REGISTRY))})"
        )
    return _REGISTRY[rule_id]


def _load_rules() -> None:
    # Importing the package triggers every @register decorator exactly once.
    import repro.analysis.rules  # noqa: F401


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Files outside a ``repro`` package tree (tests, scratch files) get a
    name derived from their stem, which places them outside every
    domain-scoped rule.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.stem]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _syntax_error_violation(exc: SyntaxError, path: str) -> Violation:
    return Violation(
        rule_id="syntax-error",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        message=f"cannot parse: {exc.msg}",
    )


def _check_module(
    parsed: ParsedModule,
    source: str,
    config: LintConfig,
    project: ProjectContext,
) -> list[Violation]:
    """Run every enabled rule over one parsed module."""
    ctx = ModuleContext(
        path=parsed.path,
        module=parsed.module,
        tree=parsed.tree,
        source_lines=parsed.source_lines,
        config=config,
        project=project,
        pragmas=scan_pragmas(source),
    )
    suppressions = _suppressions_from_pragmas(ctx.pragmas)
    found: list[Violation] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.id):
            continue
        for violation in rule.check(ctx):
            if not suppressions.suppressed(violation):
                found.append(violation)
    return found


# Worker-side state for --jobs: populated before the fork so children
# inherit the parsed project copy-on-write instead of pickling it per task.
_FORK_STATE: dict = {}


def _check_module_forked(module_name: str) -> list[Violation]:
    parsed = _FORK_STATE["project"].modules[module_name]
    return _check_module(
        parsed,
        _FORK_STATE["sources"][module_name],
        _FORK_STATE["config"],
        _FORK_STATE["project"],
    )


def analyze_sources(
    items: Sequence[tuple[str, str, str]],
    config: LintConfig | None = None,
    *,
    jobs: int = 1,
) -> list[Violation]:
    """Whole-program analysis over ``(path, module, source)`` triples.

    Every module is parsed first; one :class:`ProjectContext` is built
    over all of them; then per-module rules run (in parallel when
    ``jobs > 1`` and the platform supports fork).  Unparseable files
    yield a ``syntax-error`` pseudo-violation and are left out of the
    project graph.
    """
    cfg = config or DEFAULT_CONFIG
    violations: list[Violation] = []
    parsed_modules: list[ParsedModule] = []
    sources: dict[str, str] = {}
    for path, module, source in items:
        try:
            parsed = parse_module(source, module=module, path=path)
        except SyntaxError as exc:
            violations.append(_syntax_error_violation(exc, path))
            continue
        if parsed.module in sources:
            # Same dotted name twice (scratch trees): keep the first for
            # the graph, still lint the second standalone below.
            solo = ProjectContext([parsed], wall_strip_keys=cfg.wall_strip_keys)
            violations.extend(_check_module(parsed, source, cfg, solo))
            continue
        parsed_modules.append(parsed)
        sources[parsed.module] = source

    _load_rules()
    project = ProjectContext(parsed_modules, wall_strip_keys=cfg.wall_strip_keys)

    if jobs > 1 and len(parsed_modules) > 1:
        chunks = _run_parallel(parsed_modules, sources, cfg, project, jobs)
    else:
        chunks = [
            _check_module(pm, sources[pm.module], cfg, project)
            for pm in parsed_modules
        ]
    for chunk in chunks:
        violations.extend(chunk)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def _run_parallel(
    parsed_modules: list[ParsedModule],
    sources: dict[str, str],
    config: LintConfig,
    project: ProjectContext,
    jobs: int,
) -> list[list[Violation]]:
    import multiprocessing

    try:
        mp = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: run serial
        return [
            _check_module(pm, sources[pm.module], config, project)
            for pm in parsed_modules
        ]
    _FORK_STATE["project"] = project
    _FORK_STATE["sources"] = sources
    _FORK_STATE["config"] = config
    try:
        with mp.Pool(processes=jobs) as pool:
            return pool.map(
                _check_module_forked,
                [pm.module for pm in parsed_modules],
                chunksize=max(1, len(parsed_modules) // (jobs * 4) or 1),
            )
    finally:
        _FORK_STATE.clear()


def analyze_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    config: LintConfig | None = None,
) -> list[Violation]:
    """Run every enabled rule over one source string.

    The single module forms a one-module project, so project-backed rules
    still work (intra-module) — multi-module behaviour needs
    :func:`analyze_sources`.
    """
    return analyze_sources([(path, module, source)], config)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_paths(
    paths: Iterable[str | Path],
    config: LintConfig | None = None,
    *,
    jobs: int = 1,
) -> list[Violation]:
    """Run the whole-program analyzer over files/directories."""
    items = [
        (str(path), module_name_for(path), path.read_text(encoding="utf-8"))
        for path in iter_python_files(paths)
    ]
    return analyze_sources(items, config, jobs=jobs)
