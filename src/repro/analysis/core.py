"""reprolint framework: violations, the rule registry, and the driver.

A rule is a class with an ``id``, a one-line ``summary``, and a
``check(module)`` generator over :class:`Violation`.  Rules register
themselves with the :func:`register` decorator at import time; the driver
parses each file once and hands every enabled rule the same
:class:`ModuleContext`.

Suppressions are noqa-style comments tied to the violation's line::

    x = wall_clock()            # reprolint: skip
    y = wall_clock()            # reprolint: skip=determinism-clock
    # reprolint: skip-file          (first 10 lines: whole file)
    # reprolint: skip-file=unit-suffix,public-api

A blanket ``skip`` silences every rule on that line; a ``skip=`` list
silences only the named rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.errors import ConfigurationError

_PRAGMA = re.compile(r"#\s*reprolint:\s*(skip-file|skip)(?:=([\w,-]+))?")
_SKIP_FILE_SCAN_LINES = 10


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"


@dataclass
class _Suppressions:
    """Parsed pragma comments for one file."""

    file_wide: set[str] = field(default_factory=set)  # rule ids; "*" = all
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def suppressed(self, violation: Violation) -> bool:
        if "*" in self.file_wide or violation.rule_id in self.file_wide:
            return True
        rules = self.by_line.get(violation.line)
        if rules is None:
            return False
        return "*" in rules or violation.rule_id in rules


def _parse_suppressions(source_lines: list[str]) -> _Suppressions:
    sup = _Suppressions()
    for lineno, text in enumerate(source_lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        kind, names = match.groups()
        rules = set(names.split(",")) if names else {"*"}
        if kind == "skip-file":
            if lineno <= _SKIP_FILE_SCAN_LINES:
                sup.file_wide |= rules
        else:
            sup.by_line.setdefault(lineno, set()).update(rules)
    return sup


@dataclass
class ModuleContext:
    """Everything a rule sees for one parsed file."""

    path: str
    module: str  # dotted name, e.g. "repro.zynq.bitstream"
    tree: ast.Module
    source_lines: list[str]
    config: LintConfig

    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (computed lazily, cached)."""
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)


class Rule:
    """Base class: subclasses override ``id``, ``summary``, ``check``."""

    id: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Convenience constructor anchored at ``node``."""
        return Violation(
            rule_id=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    if not cls.id:
        raise ConfigurationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id."""
    _load_rules()
    if rule_id not in _REGISTRY:
        raise ConfigurationError(
            f"unknown rule {rule_id!r} (known: {', '.join(sorted(_REGISTRY))})"
        )
    return _REGISTRY[rule_id]


def _load_rules() -> None:
    # Importing the package triggers every @register decorator exactly once.
    import repro.analysis.rules  # noqa: F401


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Files outside a ``repro`` package tree (tests, scratch files) get a
    name derived from their stem, which places them outside every
    domain-scoped rule.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.stem]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def analyze_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    config: LintConfig | None = None,
) -> list[Violation]:
    """Run every enabled rule over one source string."""
    cfg = config or DEFAULT_CONFIG
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id="syntax-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=path,
        module=module,
        tree=tree,
        source_lines=source.splitlines(),
        config=cfg,
    )
    suppressions = _parse_suppressions(ctx.source_lines)
    found: list[Violation] = []
    for rule in all_rules():
        if not cfg.rule_enabled(rule.id):
            continue
        for violation in rule.check(ctx):
            if not suppressions.suppressed(violation):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return found


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> list[Violation]:
    """Run the analyzer over files/directories; returns sorted violations."""
    found: list[Violation] = []
    for path in iter_python_files(paths):
        found.extend(
            analyze_source(
                path.read_text(encoding="utf-8"),
                module=module_name_for(path),
                path=str(path),
                config=config,
            )
        )
    return found
