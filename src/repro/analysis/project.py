"""The whole-program pass: parse every module once, see across all of them.

reprolint v1 was a per-file linter; every rule saw one ``ast.Module`` and
nothing else.  The invariants that actually protect byte-identical
determinism across execution modes are *cross-module*: a wall-clock value
produced in ``repro.telemetry``, returned through a helper in
``repro.fleet.worker``, and finally folded into a dict that reaches
``deterministic_view`` is invisible to any single-file rule.  This module
builds the project-level structures those rules need:

* :class:`ParsedModule` — one parsed file (path, dotted name, AST, lines);
* :class:`ModuleSummary` — the per-module symbol table: top-level defs,
  import bindings, ``__all__`` contents, module-level mutable state,
  every name the module reads;
* :class:`ProjectContext` — the project: all summaries, the module-level
  import graph (runtime edges only — ``if TYPE_CHECKING:`` and
  function-local imports do not create load-order cycles), a function
  index with call edges, and the interprocedural wall-taint fixpoint
  (:attr:`ProjectContext.wall_tainted_functions`);
* :class:`TaintEvaluator` — the shared intra-procedural taint engine used
  both by the fixpoint and by the ``taint-deterministic-sink`` rule.

The taint model, honestly stated (a linter, not a verifier):

* **Sources**: wall-clock calls (``time.time``/``perf_counter``/...),
  ``datetime.now``-style constructors, ``os.environ`` / ``os.getenv``,
  stdlib/`numpy` RNG calls, ``uuid.uuid1/uuid4``, and ``Stopwatch``
  construction (the telemetry wall-timer).
* **Propagation**: forward over local assignments, arithmetic,
  containers, f-strings, ``with ... as`` bindings, and loop targets; two
  passes per scope so loop-carried taint converges.  Calls to *resolved*
  project functions take the callee's fixpoint summary (computed with
  clean parameters — argument flow into project calls is not tracked);
  calls to unresolved/builtin functions conservatively propagate argument
  and receiver taint.
* **Laundering**: a value stored under a key or keyword named in the wall
  strip lists (``WALL_METRIC_NAMES`` / ``WALL_ROLLUP_KEYS`` /
  ``WALL_OUTCOME_FIELDS``) is clean again — the deterministic views strip
  exactly those keys, so the wall value never survives into the
  deterministic artefact.  Resolved project *class* constructors are
  clean (dataclasses segregate wall fields by the same contract).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Host-clock calls that leak nondeterminism into a simulation.  This is
#: the canonical definition; :mod:`repro.analysis.rules.determinism`
#: re-exports it for backward compatibility.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

#: ``datetime``-style constructors keyed by their trailing attribute pair.
WALL_CLOCK_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Environment reads: host state a deterministic artefact must never see.
ENV_SOURCE_CALLS = frozenset({"os.getenv", "os.environ.get"})

#: Nondeterministic id constructors.
UUID_SOURCE_CALLS = frozenset({"uuid.uuid1", "uuid.uuid4"})

#: Constructors whose *instances* are wall-clock carriers (attribute reads
#: like ``stopwatch.elapsed_s`` inherit the taint).
WALL_SOURCE_CONSTRUCTORS = frozenset({"Stopwatch"})


def dotted_name(node: ast.expr) -> str | None:
    """Render an attribute chain like ``np.random.default_rng`` to a string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_wall_source_call(call: ast.Call) -> bool:
    """True when ``call`` reads the host clock, environment, or entropy."""
    name = dotted_name(call.func)
    if name is None:
        return False
    if name in WALL_CLOCK_CALLS or name in ENV_SOURCE_CALLS or name in UUID_SOURCE_CALLS:
        return True
    if name.endswith(WALL_CLOCK_SUFFIXES):
        return True
    if name.split(".")[-1] in WALL_SOURCE_CONSTRUCTORS:
        return True
    if name.startswith("random.") or ".random." in name:
        return True
    return False


def is_env_source_expr(node: ast.expr) -> bool:
    """True for bare ``os.environ`` (subscripted or passed around)."""
    if isinstance(node, (ast.Attribute, ast.Name)):
        name = dotted_name(node)
        return name == "os.environ" or bool(name and name.startswith("os.environ."))
    return False


@dataclass
class ParsedModule:
    """One parsed source file."""

    path: str
    module: str  # dotted name, e.g. "repro.fleet.worker"
    tree: ast.Module
    source_lines: list[str]


@dataclass
class ModuleSummary:
    """The per-module slice of the project symbol table.

    Attributes:
        name: Dotted module name.
        path: Source path the module was parsed from.
        defs: Top-level name -> kind (``function`` / ``class`` / ``value``
            / ``import``).
        bindings: Local name -> fully-qualified origin for every import in
            the module (function-local imports included — they bind names
            for resolution even though they add no load-order edge).
        import_lines: Imported project module -> first module-level
            runtime import line (the import-graph edges).
        exports: ``__all__`` entries as ``(name, lineno)``, or ``None``
            when the module declares no ``__all__``.
        exports_lineno: Line of the ``__all__`` assignment itself.
        mutable_globals: Module-level names bound to mutable containers
            (list/dict/set literals or constructors) -> definition line.
        used_names: Every bare name the module reads anywhere.
        from_imports: Module-level ``from X import Y`` bindings ->
            ``(qualified origin, lineno)`` (re-export candidates).
    """

    name: str
    path: str
    defs: dict[str, str] = field(default_factory=dict)
    bindings: dict[str, str] = field(default_factory=dict)
    import_lines: dict[str, int] = field(default_factory=dict)
    exports: list[tuple[str, int]] | None = None
    exports_lineno: int | None = None
    mutable_globals: dict[str, int] = field(default_factory=dict)
    used_names: set[str] = field(default_factory=set)
    from_imports: dict[str, tuple[str, int]] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One project function (top-level def or class method)."""

    qualname: str  # "repro.fleet.worker.execute_spec" / "mod.Class.method"
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef


_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "defaultdict", "deque", "Counter"})
_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _iter_toplevel(body: Iterable[ast.stmt], *, runtime_only: bool) -> Iterator[ast.stmt]:
    """Module-level statements, descending into try/if blocks.

    With ``runtime_only`` the walk skips ``if TYPE_CHECKING:`` bodies —
    annotations-only imports create no load-order edge.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                yield from _iter_toplevel(block, runtime_only=runtime_only)
            for handler in stmt.handlers:
                yield from _iter_toplevel(handler.body, runtime_only=runtime_only)
        elif isinstance(stmt, ast.If):
            if not (runtime_only and _is_type_checking_guard(stmt)):
                yield from _iter_toplevel(stmt.body, runtime_only=runtime_only)
            yield from _iter_toplevel(stmt.orelse, runtime_only=runtime_only)


def parse_module(source: str, *, module: str, path: str) -> ParsedModule:
    """Parse one source string (raises ``SyntaxError`` like ``ast.parse``)."""
    tree = ast.parse(source, filename=path)
    return ParsedModule(
        path=path, module=module, tree=tree, source_lines=source.splitlines()
    )


def summarize_module(parsed: ParsedModule) -> ModuleSummary:
    """Extract the symbol-table slice of one parsed module."""
    summary = ModuleSummary(name=parsed.module, path=parsed.path)
    package = parsed.module.rsplit(".", 1)[0] if "." in parsed.module else ""

    def bind_import(stmt: ast.stmt, *, module_level: bool) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                summary.bindings.setdefault(local, origin)
                if module_level:
                    summary.defs.setdefault(local, "import")
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                # Relative import: resolve against the enclosing package.
                anchor = parsed.module.split(".")
                anchor = anchor[: len(anchor) - stmt.level] if not parsed.path.endswith(
                    "__init__.py"
                ) else anchor[: len(anchor) - stmt.level + 1]
                base = ".".join(anchor + ([stmt.module] if stmt.module else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                origin = f"{base}.{alias.name}" if base else alias.name
                summary.bindings.setdefault(local, origin)
                if module_level:
                    summary.defs.setdefault(local, "import")
                    summary.from_imports.setdefault(local, (origin, stmt.lineno))

    # Top-level defs, __all__, mutable globals, module-level import edges.
    for stmt in _iter_toplevel(parsed.tree.body, runtime_only=False):
        if isinstance(stmt, _FuncDef):
            summary.defs[stmt.name] = "function"
        elif isinstance(stmt, ast.ClassDef):
            summary.defs[stmt.name] = "class"
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    summary.exports = _parse_all(stmt.value)
                    summary.exports_lineno = stmt.lineno
                    continue
                summary.defs.setdefault(target.id, "value")
                if _is_mutable_literal(stmt.value):
                    summary.mutable_globals.setdefault(target.id, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            summary.defs.setdefault(stmt.target.id, "value")
            if stmt.value is not None and _is_mutable_literal(stmt.value):
                summary.mutable_globals.setdefault(stmt.target.id, stmt.lineno)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            bind_import(stmt, module_level=True)

    # Runtime module-level imports only: these are the load-order edges.
    for stmt in _iter_toplevel(parsed.tree.body, runtime_only=True):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                summary.import_lines.setdefault(alias.name, stmt.lineno)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            base = stmt.module
            if stmt.level:
                continue  # relative runtime imports: rare here, skip edges
            summary.import_lines.setdefault(base, stmt.lineno)
            for alias in stmt.names:
                if alias.name != "*":
                    # ``from repro.fleet import worker`` also loads the
                    # submodule; record the candidate edge.
                    summary.import_lines.setdefault(f"{base}.{alias.name}", stmt.lineno)

    # Function-local imports still bind names (for call resolution).
    for node in ast.walk(parsed.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            bind_import(node, module_level=False)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            summary.used_names.add(node.id)

    if package:
        summary.bindings.setdefault("__package__", package)
    return summary


def _parse_all(value: ast.expr) -> list[tuple[str, int]] | None:
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    entries: list[tuple[str, int]] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            entries.append((element.value, element.lineno))
    return entries


class ProjectContext:
    """Everything the cross-module rules can see.

    Built once per analysis run from every parsed module; handed to each
    :class:`~repro.analysis.core.ModuleContext` so rules reason across
    file boundaries.
    """

    def __init__(
        self,
        parsed: Iterable[ParsedModule],
        *,
        wall_strip_keys: frozenset[str] = frozenset(),
    ):
        self.modules: dict[str, ParsedModule] = {pm.module: pm for pm in parsed}
        self.summaries: dict[str, ModuleSummary] = {
            name: summarize_module(pm) for name, pm in self.modules.items()
        }
        self.wall_strip_keys = wall_strip_keys
        self.import_graph: dict[str, dict[str, int]] = self._build_import_graph()
        self.functions: dict[str, FunctionInfo] = self._index_functions()
        self.call_edges: dict[str, frozenset[str]] = {}
        self.wall_tainted_functions: frozenset[str] = frozenset()
        self._compute_call_edges_and_taint()

    # Graph construction ------------------------------------------------------

    def _build_import_graph(self) -> dict[str, dict[str, int]]:
        graph: dict[str, dict[str, int]] = {}
        for name, summary in self.summaries.items():
            edges: dict[str, int] = {}
            for target, lineno in summary.import_lines.items():
                if target == name:
                    continue
                if target in self.modules:
                    edges.setdefault(target, lineno)
            graph[name] = edges
        return graph

    def _index_functions(self) -> dict[str, FunctionInfo]:
        functions: dict[str, FunctionInfo] = {}
        for name, pm in self.modules.items():
            for stmt in pm.tree.body:
                if isinstance(stmt, _FuncDef):
                    qualname = f"{name}.{stmt.name}"
                    functions[qualname] = FunctionInfo(qualname, name, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    for member in stmt.body:
                        if isinstance(member, _FuncDef):
                            qualname = f"{name}.{stmt.name}.{member.name}"
                            functions[qualname] = FunctionInfo(qualname, name, member)
        return functions

    # Name resolution ---------------------------------------------------------

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve ``dotted`` as used in ``module`` to a qualified name.

        Follows one level of re-export chains (``from pkg import X`` where
        ``pkg/__init__`` itself imported ``X`` from its defining module).
        Returns ``None`` for names the project cannot see (builtins,
        third-party modules, locals).
        """
        summary = self.summaries.get(module)
        if summary is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = summary.bindings.get(head)
        if origin is None:
            if head in summary.defs:
                return f"{module}.{dotted}"
            return None
        target = f"{origin}.{rest}" if rest else origin
        return self._chase(target, depth=0)

    def _chase(self, target: str, depth: int) -> str:
        """Follow ``pkg.Name`` re-exports to the defining module."""
        if depth > 4 or target in self.modules or target in self.functions:
            return target
        owner, _, leaf = target.rpartition(".")
        if not owner or owner not in self.summaries:
            return target
        owner_summary = self.summaries[owner]
        if leaf in owner_summary.defs and owner_summary.defs[leaf] != "import":
            return target
        origin = owner_summary.bindings.get(leaf)
        if origin is None:
            return target
        return self._chase(origin, depth + 1)

    def resolve_function(self, module: str, dotted: str) -> str | None:
        """Resolve a call target to a project function qualname, if any."""
        target = self.resolve(module, dotted)
        if target is not None and target in self.functions:
            return target
        return None

    def resolved_kind(self, module: str, dotted: str) -> str | None:
        """``function`` / ``class`` / ``value`` / ``module`` for a name."""
        target = self.resolve(module, dotted)
        if target is None:
            return None
        if target in self.modules:
            return "module"
        owner, _, leaf = target.rpartition(".")
        summary = self.summaries.get(owner)
        if summary is None:
            return None
        return summary.defs.get(leaf)

    # Call edges + taint fixpoint ---------------------------------------------

    def _compute_call_edges_and_taint(self) -> None:
        edges: dict[str, set[str]] = {}
        for qualname, info in self.functions.items():
            callees: set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name is None:
                        continue
                    resolved = self.resolve_function(info.module, name)
                    if resolved is not None:
                        callees.add(resolved)
            edges[qualname] = callees
        self.call_edges = {q: frozenset(c) for q, c in edges.items()}

        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                if qualname in tainted:
                    continue
                evaluator = TaintEvaluator(
                    project=self,
                    module=info.module,
                    strip_keys=self.wall_strip_keys,
                    summaries=tainted,
                )
                if evaluator.returns_tainted(info.node):
                    tainted.add(qualname)
                    changed = True
        self.wall_tainted_functions = frozenset(tainted)

    # Import cycles -----------------------------------------------------------

    def import_cycles(self) -> list[list[str]]:
        """Elementary runtime import cycles, one per strongly-connected
        component, each rotated to start at its smallest module name."""
        index_counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        sccs: list[list[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan (the tree is shallow, but recursion limits
            # are not a failure mode a linter should have).
            work = [(node, iter(sorted(self.import_graph.get(node, {}))))]
            index[node] = low[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, neighbours = work[-1]
                advanced = False
                for neighbour in neighbours:
                    if neighbour not in index:
                        index[neighbour] = low[neighbour] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(neighbour)
                        on_stack.add(neighbour)
                        work.append(
                            (neighbour, iter(sorted(self.import_graph.get(neighbour, {}))))
                        )
                        advanced = True
                        break
                    if neighbour in on_stack:
                        low[current] = min(low[current], index[neighbour])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])
                if low[current] == index[current]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        sccs.append(component)

        for name in sorted(self.import_graph):
            if name not in index:
                strongconnect(name)

        cycles: list[list[str]] = []
        for component in sccs:
            members = set(component)
            start = min(component)
            cycle = self._cycle_through(start, members)
            if cycle:
                cycles.append(cycle)
        return sorted(cycles)

    def _cycle_through(self, start: str, members: set[str]) -> list[str] | None:
        """One concrete cycle from ``start`` back to itself inside an SCC."""
        path = [start]
        seen = {start}

        def dfs(node: str) -> bool:
            for neighbour in sorted(self.import_graph.get(node, {})):
                if neighbour not in members:
                    continue
                if neighbour == start:
                    return True
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                path.append(neighbour)
                if dfs(neighbour):
                    return True
                path.pop()
            return False

        return path if dfs(start) else None


class TaintEvaluator:
    """Intra-procedural forward wall-taint pass over one scope.

    Shared between the project fixpoint (function return summaries) and
    the ``taint-deterministic-sink`` rule (sink-site checking).
    """

    def __init__(
        self,
        *,
        project: "ProjectContext | None",
        module: str,
        strip_keys: frozenset[str],
        summaries: "set[str] | frozenset[str]",
    ):
        self.project = project
        self.module = module
        self.strip_keys = strip_keys
        self.summaries = summaries

    # Scope scanning ----------------------------------------------------------

    def scan_body(self, body: list[ast.stmt]) -> set[str]:
        """Tainted local names after a forward pass over ``body``.

        Two passes so taint assigned late in a loop body reaches uses
        earlier in the next iteration.
        """
        tainted: set[str] = set()
        for _ in range(2):
            self._pass(body, tainted)
        return tainted

    def _pass(self, body: list[ast.stmt], tainted: set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (*_FuncDef, ast.ClassDef)):
                continue  # separate scope
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                if value is None:
                    continue
                is_tainted = self.expr_tainted(value, tainted)
                for target in targets:
                    for name in _target_names(target):
                        if is_tainted:
                            tainted.add(name)
                        else:
                            tainted.discard(name)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name) and self.expr_tainted(
                    stmt.value, tainted
                ):
                    tainted.add(stmt.target.id)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if self.expr_tainted(stmt.iter, tainted):
                    tainted.update(_target_names(stmt.target))
                self._pass(stmt.body, tainted)
                self._pass(stmt.orelse, tainted)
            elif isinstance(stmt, (ast.While, ast.If)):
                self._pass(stmt.body, tainted)
                self._pass(stmt.orelse, tainted)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None and self.expr_tainted(
                        item.context_expr, tainted
                    ):
                        tainted.update(_target_names(item.optional_vars))
                self._pass(stmt.body, tainted)
            elif isinstance(stmt, ast.Try):
                self._pass(stmt.body, tainted)
                for handler in stmt.handlers:
                    self._pass(handler.body, tainted)
                self._pass(stmt.orelse, tainted)
                self._pass(stmt.finalbody, tainted)

    def returns_tainted(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """True when some ``return``/``yield`` value of ``fn`` is tainted."""
        tainted = self.scan_body(fn.body)
        for node in walk_scope(fn.body):
            if isinstance(node, ast.Return) and node.value is not None:
                if self.expr_tainted(node.value, tainted):
                    return True
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
                if self.expr_tainted(node.value, tainted):
                    return True
        return False

    # Expression taint --------------------------------------------------------

    def expr_tainted(self, expr: ast.expr, tainted: set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Call):
            return self._call_tainted(expr, tainted)
        if isinstance(expr, ast.Attribute):
            if is_env_source_expr(expr):
                return True
            return self.expr_tainted(expr.value, tainted)
        if isinstance(expr, ast.Subscript):
            return self.expr_tainted(expr.value, tainted)
        if isinstance(expr, ast.BinOp):
            return self.expr_tainted(expr.left, tainted) or self.expr_tainted(
                expr.right, tainted
            )
        if isinstance(expr, ast.UnaryOp):
            return self.expr_tainted(expr.operand, tainted)
        if isinstance(expr, ast.BoolOp):
            return any(self.expr_tainted(v, tainted) for v in expr.values)
        if isinstance(expr, ast.Compare):
            return False  # a comparison result is a bool, not a wall value
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body, tainted) or self.expr_tainted(
                expr.orelse, tainted
            )
        if isinstance(expr, ast.Dict):
            for key, value in zip(expr.keys, expr.values):
                if (
                    key is not None
                    and isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value in self.strip_keys
                ):
                    continue  # laundered: the deterministic views strip it
                if value is not None and self.expr_tainted(value, tainted):
                    return True
            return False
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            return any(self.expr_tainted(e, tainted) for e in expr.elts)
        if isinstance(expr, ast.JoinedStr):
            return any(
                isinstance(v, ast.FormattedValue) and self.expr_tainted(v.value, tainted)
                for v in expr.values
            )
        if isinstance(expr, ast.FormattedValue):
            return self.expr_tainted(expr.value, tainted)
        if isinstance(expr, ast.Starred):
            return self.expr_tainted(expr.value, tainted)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tainted(expr.value, tainted)
        if isinstance(expr, ast.Await):
            return self.expr_tainted(expr.value, tainted)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.expr_tainted(expr.elt, tainted) or any(
                self.expr_tainted(g.iter, tainted) for g in expr.generators
            )
        if isinstance(expr, ast.DictComp):
            return self.expr_tainted(expr.value, tainted) or any(
                self.expr_tainted(g.iter, tainted) for g in expr.generators
            )
        return False

    def _call_tainted(self, call: ast.Call, tainted: set[str]) -> bool:
        if is_wall_source_call(call):
            return True
        name = dotted_name(call.func)
        if name is not None and self.project is not None:
            resolved = self.project.resolve_function(self.module, name)
            if resolved is not None:
                return resolved in self.summaries
            kind = self.project.resolved_kind(self.module, name)
            if kind == "class":
                # Project dataclasses segregate wall fields under strip
                # keys by contract; the instance itself is clean.
                return False
        # Unresolved (builtin / third-party / method) call: conservatively
        # propagate receiver and argument taint, laundering strip kwargs.
        if isinstance(call.func, ast.Attribute) and self.expr_tainted(
            call.func.value, tainted
        ):
            return True
        for arg in call.args:
            if self.expr_tainted(arg, tainted):
                return True
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in self.strip_keys:
                continue
            if self.expr_tainted(keyword.value, tainted):
                return True
        return False


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class scopes.

    Nested ``def``/``class``/``lambda`` nodes themselves are yielded (a
    rule may care that they exist) but their bodies belong to a different
    scope and are not entered.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (*_FuncDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str, list[ast.stmt]]]:
    """Every taint scope of a module: ``("<module>", body)`` plus one
    entry per function (any nesting depth), labelled by qualname suffix."""
    yield "<module>", tree.body

    # Functions at any depth (inside ifs, classes, other functions).
    def deep(body: list[ast.stmt], prefix: str) -> Iterator[tuple[str, list[ast.stmt]]]:
        for stmt in body:
            if isinstance(stmt, _FuncDef):
                qualname = f"{prefix}{stmt.name}"
                yield qualname, stmt.body
                yield from deep(stmt.body, f"{qualname}.")
            elif isinstance(stmt, ast.ClassDef):
                yield from deep(stmt.body, f"{prefix}{stmt.name}.")
            else:
                for block_name in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, block_name, None)
                    if isinstance(block, list):
                        yield from deep(block, prefix)
                for handler in getattr(stmt, "handlers", []):
                    yield from deep(handler.body, prefix)

    yield from deep(tree.body, "")
